//! The simulated machine: workers (PEs + LCPs) executing op streams
//! against the reconfigurable memory system.
//!
//! The event loop is batched event-driven: a min-heap orders workers by
//! their next issue cycle, and all workers issuing in the same cycle are
//! processed together so same-cycle bank conflicts serialize exactly as
//! the arbitrated crossbar would.

use crate::analyze::{ParCommit, ProvenKind};
use crate::cache::CacheBank;
use crate::config::{Geometry, HwConfig, L2Mode, MicroArch};
use crate::energy::EnergyModel;
use crate::hbm::Hbm;
use crate::memsys::{MemSnapshot, MemorySystem};
use crate::op::{Op, OpStream};
use crate::program::{exec_span, HbmCall, HbmCallKind, Lane, LaneState, Program, TileExec};
use crate::stats::{EpochStats, MemoStats, SimReport, SimStats};
use crate::trace::{TraceCapture, TraceConfig, TraceEvent, Tracer};
use crate::verify::{self, Diagnostic, ProgramSet, RegionMap};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Errors surfaced by a simulation run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SimError {
    /// A worker issued an SPM op while the configuration exposes no SPM.
    SpmUnavailable {
        /// The active configuration.
        config: HwConfig,
        /// The offending worker id.
        worker: usize,
    },
    /// An LCP issued a tile barrier (tile barriers synchronize PEs only).
    LcpBarrier {
        /// The offending tile.
        tile: usize,
    },
    /// The run ended with workers still blocked at a barrier (mismatched
    /// barrier counts across a tile's streams — a kernel bug).
    BarrierDeadlock {
        /// Workers left blocked.
        blocked: Vec<usize>,
    },
    /// The stream set was built for a different geometry.
    GeometryMismatch {
        /// Geometry of the machine.
        machine: Geometry,
        /// Geometry of the stream set.
        streams: Geometry,
    },
    /// [`Machine::run_verified`] rejected the stream set before running
    /// it: the linter found error-severity diagnostics.
    Rejected {
        /// Every finding (warnings included); at least one has
        /// [`verify::Severity::Error`].
        diagnostics: Vec<Diagnostic>,
    },
    /// [`Machine::run_program`] was given a program compiled for a
    /// different hardware configuration or microarchitecture than the
    /// machine's current one.
    ProgramMismatch {
        /// The machine's active configuration.
        machine: HwConfig,
        /// The configuration the program was compiled for.
        program: HwConfig,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SpmUnavailable { config, worker } => {
                write!(
                    f,
                    "worker {worker} issued an spm op but {config} has no scratchpad"
                )
            }
            SimError::LcpBarrier { tile } => {
                write!(f, "lcp of tile {tile} issued a tile barrier")
            }
            SimError::BarrierDeadlock { blocked } => {
                write!(f, "run ended with workers {blocked:?} blocked at a barrier")
            }
            SimError::GeometryMismatch { machine, streams } => {
                write!(f, "stream set built for {streams} but machine is {machine}")
            }
            SimError::Rejected { diagnostics } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == verify::Severity::Error)
                    .count();
                write!(f, "stream set rejected by the verifier ({errors} error(s))")?;
                if let Some(first) = diagnostics
                    .iter()
                    .find(|d| d.severity == verify::Severity::Error)
                {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            SimError::ProgramMismatch { machine, program } => {
                write!(
                    f,
                    "program compiled for {program} but machine is configured as {machine} \
                     (or for a different microarchitecture)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One worker's op source.
///
/// Kernels that generate ops lazily use the boxed dynamic form; kernels
/// that replay a pre-compiled op buffer use the slice form, which the
/// event loop iterates without a virtual call per op (the dominant
/// per-op cost for compiled streams).
pub(crate) enum WorkerStream<'a> {
    Boxed(Box<dyn OpStream + 'a>),
    Slice(std::slice::Iter<'a, Op>),
}

impl Iterator for WorkerStream<'_> {
    type Item = Op;

    #[inline]
    fn next(&mut self) -> Option<Op> {
        match self {
            WorkerStream::Boxed(b) => b.next(),
            WorkerStream::Slice(it) => it.next().copied(),
        }
    }
}

/// Per-worker op streams for one kernel invocation.
///
/// Workers without a stream stay idle. Streams may borrow the workload
/// (`'a`) — kernels generate ops lazily from matrix storage, or replay
/// pre-compiled `&[Op]` buffers via [`StreamSet::set_pe_ops`].
pub struct StreamSet<'a> {
    geom: Geometry,
    streams: Vec<Option<WorkerStream<'a>>>,
}

impl fmt::Debug for StreamSet<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamSet")
            .field("geometry", &self.geom)
            .field(
                "active",
                &self.streams.iter().filter(|s| s.is_some()).count(),
            )
            .finish()
    }
}

impl<'a> StreamSet<'a> {
    /// Creates an empty stream set for `geom`.
    pub fn new(geom: Geometry) -> Self {
        let mut streams = Vec::with_capacity(geom.total_workers());
        streams.resize_with(geom.total_workers(), || None);
        StreamSet { geom, streams }
    }

    /// Assigns PE `(tile, pe)`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set_pe(&mut self, tile: usize, pe: usize, stream: impl OpStream + 'a) {
        let id = self.geom.pe_id(tile, pe);
        self.streams[id] = Some(WorkerStream::Boxed(Box::new(stream)));
    }

    /// Assigns PE `(tile, pe)`'s stream from a pre-compiled op buffer.
    ///
    /// Replaying a buffer avoids both the per-op virtual dispatch of the
    /// boxed form and regenerating the ops — the hot path for iterative
    /// algorithms whose kernel streams are cached across invocations.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set_pe_ops(&mut self, tile: usize, pe: usize, ops: &'a [Op]) {
        let id = self.geom.pe_id(tile, pe);
        self.streams[id] = Some(WorkerStream::Slice(ops.iter()));
    }

    /// Assigns tile `tile`'s LCP stream.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn set_lcp(&mut self, tile: usize, stream: impl OpStream + 'a) {
        let id = self.geom.lcp_id(tile);
        self.streams[id] = Some(WorkerStream::Boxed(Box::new(stream)));
    }

    /// Assigns tile `tile`'s LCP stream from a pre-compiled op buffer.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn set_lcp_ops(&mut self, tile: usize, ops: &'a [Op]) {
        let id = self.geom.lcp_id(tile);
        self.streams[id] = Some(WorkerStream::Slice(ops.iter()));
    }

    /// Number of workers with assigned streams.
    pub fn active(&self) -> usize {
        self.streams.iter().filter(|s| s.is_some()).count()
    }

    /// Geometry this set was built for.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Rebuilds a set from per-worker streams (indexed by global worker
    /// id). Used by [`verify::ProgramSet`] to turn analysed buffers back
    /// into something runnable.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != geom.total_workers()`.
    pub(crate) fn from_streams(geom: Geometry, streams: Vec<Option<WorkerStream<'a>>>) -> Self {
        assert_eq!(
            streams.len(),
            geom.total_workers(),
            "stream vector length mismatch"
        );
        StreamSet { geom, streams }
    }

    /// Consumes the set into its per-worker streams.
    pub(crate) fn into_streams(self) -> Vec<Option<WorkerStream<'a>>> {
        self.streams
    }
}

#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    pub(crate) expected: usize,
    pub(crate) waiting: Vec<(u32, u64)>, // (worker, arrival cycle)
}

/// Sentinel for "worker not scheduled" in the scan scheduler.
const IDLE: u64 = u64::MAX;

/// Bits reserved for the worker id inside a packed scan key.
const KEY_W_BITS: u32 = 6;

/// Pending-event scheduler. Pops the worker with the earliest next
/// issue cycle, breaking ties toward the lowest worker id (the order a
/// `BinaryHeap<Reverse<(u64, u32)>>` yields) — the tie order is
/// load-bearing: same-cycle bank-conflict serialization depends on it.
///
/// Each worker has at most one scheduled event. For the small worker
/// counts typical here, events live in a dense slot array of packed
/// `cycle << 6 | worker` keys (idle slots hold `u64::MAX`), so "find
/// next event" is a branch-free minimum over a few u64 lanes — far
/// cheaper than heap sifting, and the packed key makes the min directly
/// encode the heap's `(cycle, worker)` lexicographic order. Large
/// geometries (or astronomically large cycle counts, which would
/// overflow the packing) fall back to the heap.
#[derive(Debug)]
pub(crate) enum Sched {
    /// Dense slot array plus a cached copy of its minimum key, so the
    /// hot "current worker is still earliest" test is a single compare
    /// instead of a scan. Invariant: `min` equals the smallest slot key
    /// (`IDLE` when all slots are idle).
    Scan {
        next: Vec<u64>,
        min: u64,
    },
    Heap(BinaryHeap<Reverse<(u64, u32)>>),
}

impl Sched {
    pub(crate) fn new(workers: usize, start: u64) -> Self {
        if workers <= 1 << KEY_W_BITS && start < IDLE >> (KEY_W_BITS + 1) {
            Sched::Scan {
                // Padded to a whole number of 8-lane chunks (pad slots
                // stay IDLE forever) so `min_key` vectorizes.
                next: vec![IDLE; workers.max(1).div_ceil(8) * 8],
                min: IDLE,
            }
        } else {
            Sched::Heap(BinaryHeap::with_capacity(workers))
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, cycle: u64, w: u32) {
        match self {
            Sched::Scan { next, min } => {
                let key = (cycle << KEY_W_BITS) | w as u64;
                next[w as usize] = key;
                *min = (*min).min(key);
            }
            Sched::Heap(h) => h.push(Reverse((cycle, w))),
        }
    }

    /// Smallest packed key, or `IDLE` when nothing is scheduled. The
    /// slot array is padded to 8-lane chunks, so the lane-wise reduction
    /// compiles to a few SIMD min ops instead of a serial compare chain
    /// (this scan runs on nearly every context switch — it is the
    /// scheduler's hottest instruction sequence).
    #[inline]
    fn min_key(next: &[u64]) -> u64 {
        let mut lanes = [IDLE; 8];
        for chunk in next.chunks_exact(8) {
            for (lane, &k) in lanes.iter_mut().zip(chunk) {
                *lane = (*lane).min(k);
            }
        }
        let mut best = IDLE;
        for &l in &lanes {
            best = best.min(l);
        }
        best
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(u64, u32)> {
        match self {
            Sched::Scan { next, min } => {
                let key = *min;
                if key == IDLE {
                    return None;
                }
                let w = (key & ((1 << KEY_W_BITS) - 1)) as u32;
                next[w as usize] = IDLE;
                *min = Self::min_key(next);
                Some((key >> KEY_W_BITS, w))
            }
            Sched::Heap(h) => h.pop().map(|Reverse(e)| e),
        }
    }

    /// One combined step at the end of an op: worker `w` finished at
    /// `done`. If `w` is still the earliest runnable event, returns
    /// `None` (caller continues the same worker inline); otherwise
    /// schedules `w`, pops the actual minimum and returns it. Exactly
    /// equivalent to `push(done, w)` followed by `pop()`. The running
    /// worker has no slot, so the continue-inline fast path leaves the
    /// cached minimum untouched — no scan at all.
    #[inline]
    pub(crate) fn step(&mut self, done: u64, w: u32) -> Option<(u64, u32)> {
        match self {
            Sched::Scan { next, min } => {
                let key = (done << KEY_W_BITS) | w as u64;
                debug_assert!(key != IDLE, "cycle count overflows packed key");
                let top = *min;
                if top < key {
                    next[w as usize] = key;
                    let tw = (top & ((1 << KEY_W_BITS) - 1)) as u32;
                    next[tw as usize] = IDLE;
                    *min = Self::min_key(next);
                    Some((top >> KEY_W_BITS, tw))
                } else {
                    None
                }
            }
            Sched::Heap(h) => {
                if let Some(&Reverse(top)) = h.peek() {
                    if top < (done, w) {
                        h.push(Reverse((done, w)));
                        return h.pop().map(|Reverse(e)| e);
                    }
                }
                None
            }
        }
    }
}

/// Execution strategy for [`Machine::run_program`].
///
/// The epoch-parallel core splits a program at its global barriers and
/// executes each tile's lanes on its own host thread within an epoch —
/// valid only for epoch-congruent programs under a private L2, where
/// tiles share no bank and no arbitrated port (HBM interleaving is
/// validated by replay; see DESIGN.md §9). Cycle counts are bit-for-bit
/// identical to sequential execution in every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Epoch-parallel when the program is eligible *and* the host has
    /// more than one CPU; sequential otherwise.
    #[default]
    Auto,
    /// Always single-threaded.
    Sequential,
    /// Epoch-parallel whenever the program is eligible, even on a
    /// single-CPU host (used by equivalence tests).
    ParallelTiles,
}

/// One recorded steady-state [`Machine::run_program`] execution.
///
/// A run is a pure function of `(program, pre-run bank state)` once the
/// reconfiguration carry is empty: [`MemorySystem::begin_run`] resets
/// every other piece of mutable state (run stats, HBM channels, claim
/// epoch, cycle clock). So when the same program is re-run from
/// behaviorally identical banks, the machine can reinstate the recorded
/// post-run state and report instead of re-simulating. Cycle counts are
/// bit-for-bit what a real run would produce, because the recorded run
/// *was* a real run from an equivalent state.
///
/// The machine keeps a short ring of these rather than one entry:
/// iterated identical runs usually converge not to a fixed point but to
/// a short *limit cycle* of bank states (set thrashing plus prefetch
/// aging make period 2-3 common), and a hit against any point on the
/// cycle keeps the machine on the cycle forever.
#[derive(Debug)]
struct SteadyState {
    /// [`Program::id`] of the recorded run.
    program_id: u64,
    /// Bank state the recorded run started from.
    pre: (Vec<CacheBank>, Vec<CacheBank>),
    /// Bank + HBM state the recorded run ended in.
    post: MemSnapshot,
    /// Run stats as left in the memory system (for inspection parity).
    post_stats: SimStats,
    /// Epoch-commit counter deltas the recorded run accrued, re-applied
    /// on every memo hit so [`Machine::epoch_stats`] counts memo-served
    /// runs exactly as if they had been re-simulated. (Before this, a
    /// memo hit skipped `run_epochs` and froze the counters, so long
    /// epoch-parallel workloads under-reported proven commits once the
    /// memo engaged.)
    epochs: EpochStats,
    /// The recorded run's report.
    report: SimReport,
}

/// Steady-state memo capacity: enough to span the limit cycles iterated
/// kernels actually settle into (the shared-cache IP kernel's bank
/// state recurs with period ≤ 12) with room for an interleaved second
/// program, while bounding retained bank snapshots.
const STEADY_ENTRIES: usize = 16;

/// How many distinct recent program ids the machine remembers to tell
/// long-lived artifacts apart from per-call scratch recompiles.
const RECENT_IDS: usize = 32;

/// The simulated Transmuter-like machine.
#[derive(Debug)]
pub struct Machine {
    mem: MemorySystem,
    energy_model: EnergyModel,
    carry: SimStats,
    carry_cycles: u64,
    tracer: Tracer,
    exec_mode: ExecMode,
    /// Ring of recorded steady-state runs, most recent last.
    steady: Vec<SteadyState>,
    steady_hits: u64,
    steady_misses: u64,
    /// Program ids of recent [`Machine::run_program`] calls, most recent
    /// last. An id that recurs marks a long-lived compiled artifact
    /// (iterated kernels re-run the same cached `Program`); scratch
    /// programs are recompiled per call with a fresh id and never recur,
    /// so they skip the memo's snapshot cost entirely.
    recent_ids: Vec<u64>,
    /// Epochs committed replay-free on a static [`ParCommit::Proven`]
    /// verdict (cumulative, like the memo counters).
    epochs_proven: u64,
    /// Epochs committed through the dynamic shadow-HBM replay.
    epochs_replayed: u64,
    /// Replayed epochs rolled back to sequential on a timing mismatch.
    epochs_rolled_back: u64,
}

impl Machine {
    /// Creates a machine in the [`HwConfig::Sc`] baseline configuration.
    pub fn new(geom: Geometry, ua: MicroArch) -> Self {
        Machine {
            mem: MemorySystem::new(geom, ua, HwConfig::Sc),
            energy_model: EnergyModel::paper_40nm(),
            carry: SimStats::default(),
            carry_cycles: 0,
            tracer: Tracer::default(),
            exec_mode: ExecMode::default(),
            steady: Vec::new(),
            steady_hits: 0,
            steady_misses: 0,
            recent_ids: Vec::new(),
            epochs_proven: 0,
            epochs_replayed: 0,
            epochs_rolled_back: 0,
        }
    }

    /// Number of [`Machine::run_program`] invocations served from the
    /// steady-state memo instead of being re-simulated.
    pub fn steady_hits(&self) -> u64 {
        self.steady_hits
    }

    /// Steady-state memo hit/miss counters (a miss is a memo-eligible
    /// run that matched no recorded snapshot and was re-simulated).
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.steady_hits,
            misses: self.steady_misses,
        }
    }

    /// Epoch-commit counters for epoch-parallel [`Machine::run_program`]
    /// runs: how many global-barrier epochs committed replay-free on a
    /// static [`ParCommit::Proven`] verdict, how many went through the
    /// dynamic shadow-HBM replay, and how many of those rolled back to
    /// sequential execution. Cumulative over the machine's lifetime;
    /// memo-served runs skip epoch execution but re-apply the recorded
    /// run's deltas, so the counters track what simulation would have
    /// reported.
    pub fn epoch_stats(&self) -> EpochStats {
        EpochStats {
            proven: self.epochs_proven,
            replayed: self.epochs_replayed,
            rolled_back: self.epochs_rolled_back,
        }
    }

    /// Sets the execution strategy for [`Machine::run_program`].
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The current [`Machine::run_program`] execution strategy.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Enables (or, with `None`, disables) execution tracing for
    /// subsequent runs. See [`TraceConfig`].
    pub fn set_trace(&mut self, config: Option<TraceConfig>) {
        self.tracer.configure(config);
    }

    /// Takes the events recorded since tracing was enabled or last
    /// taken. Use [`Machine::take_trace_capture`] to also learn whether
    /// the `max_events` cap dropped events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.take().events
    }

    /// Takes the recorded events together with the truncation flag.
    pub fn take_trace_capture(&mut self) -> TraceCapture {
        self.tracer.take()
    }

    /// Geometry of the machine.
    pub fn geometry(&self) -> Geometry {
        self.mem.geometry()
    }

    /// Current hardware configuration.
    pub fn config(&self) -> HwConfig {
        self.mem.config()
    }

    /// Microarchitecture parameters.
    pub fn uarch(&self) -> &MicroArch {
        self.mem.uarch()
    }

    /// Replaces the energy model (defaults to the 40 nm paper model).
    /// Drops the steady-state memo: its recorded report priced energy
    /// under the old model.
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.energy_model = model;
        self.steady.clear();
    }

    /// SPM bytes one tile's PEs can use under the current configuration.
    pub fn spm_bytes_per_tile(&self) -> usize {
        self.mem.spm_bytes_per_tile()
    }

    /// L1 cache bytes per tile under the current configuration.
    pub fn l1_cache_bytes_per_tile(&self) -> usize {
        self.mem.l1_cache_bytes_per_tile()
    }

    /// Runtime-reconfigures the memory system (LCP-triggered in the real
    /// machine, ≤10-cycle switch plus dirty-line drain). The cost is
    /// carried into the next [`Machine::run`]'s report. Returns the
    /// cycle cost (0 when the configuration is unchanged).
    pub fn reconfigure(&mut self, hw: HwConfig) -> u64 {
        let before = self.mem.stats;
        let cost = self.mem.reconfigure(hw);
        // Isolate the reconfiguration's stat delta into the carry.
        let mut delta = self.mem.stats;
        delta = diff(&delta, &before);
        self.carry = self.carry.merge(&delta);
        self.carry_cycles += cost;
        cost
    }

    /// Runs one kernel invocation: executes every stream to completion
    /// and reports cycles, stats and energy (including any pending
    /// reconfiguration cost).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for geometry mismatches, SPM ops without SPM,
    /// LCP tile barriers, or barrier deadlocks.
    pub fn run(&mut self, streams: StreamSet<'_>) -> Result<SimReport, SimError> {
        let geom = self.geometry();
        if streams.geometry() != geom {
            return Err(SimError::GeometryMismatch {
                machine: geom,
                streams: streams.geometry(),
            });
        }
        self.mem.begin_run();

        let start = self.carry_cycles;
        let mut streams = streams.streams;
        let mut sched = Sched::new(geom.total_workers(), start);
        let mut tile_barriers: Vec<BarrierState> = Vec::with_capacity(geom.tiles());
        let mut global_barrier = BarrierState::default();
        for tile in 0..geom.tiles() {
            let expected = (0..geom.pes_per_tile())
                .filter(|&pe| streams[geom.pe_id(tile, pe)].is_some())
                .count();
            tile_barriers.push(BarrierState {
                expected,
                waiting: Vec::new(),
            });
        }
        for (w, s) in streams.iter().enumerate() {
            if s.is_some() {
                global_barrier.expected += 1;
                sched.push(start, w as u32);
            }
        }

        let tracing = self.tracer.enabled();
        let mut last_done = start;
        let mut cur = sched.pop();
        'outer: while let Some((mut cycle, w)) = cur {
            let stream = streams[w as usize]
                .as_mut()
                .expect("scheduled worker has stream");
            // Inner loop: keep issuing this worker's ops while it
            // remains the earliest runnable event, avoiding a
            // scheduler round trip and stream re-borrow per op.
            loop {
                let Some(op) = stream.next() else {
                    last_done = last_done.max(cycle);
                    cur = sched.pop();
                    continue 'outer;
                };
                self.mem.stats.ops += 1;
                let done = match op {
                    Op::Compute(n) => {
                        let n = n.max(1) as u64;
                        self.mem.stats.compute_cycles += n;
                        cycle + n
                    }
                    Op::Load(addr) => {
                        let done = self.mem.global_access(w as usize, addr, false, cycle);
                        self.mem.stats.mem_stall_cycles += (done - cycle).saturating_sub(1);
                        done
                    }
                    Op::Store(addr) => {
                        let done = self.mem.global_access(w as usize, addr, true, cycle);
                        self.mem.stats.mem_stall_cycles += (done - cycle).saturating_sub(1);
                        done
                    }
                    Op::SpmLoad(off) | Op::SpmStore(off) => {
                        if !self.mem.has_spm() {
                            return Err(SimError::SpmUnavailable {
                                config: self.config(),
                                worker: w as usize,
                            });
                        }
                        let is_store = matches!(op, Op::SpmStore(_));
                        let done = self.mem.spm_access(w as usize, off, is_store, cycle);
                        self.mem.stats.mem_stall_cycles += (done - cycle).saturating_sub(1);
                        done
                    }
                    Op::TileBarrier => {
                        let (tile, pe) = geom.locate(w as usize);
                        if pe.is_none() {
                            return Err(SimError::LcpBarrier { tile });
                        }
                        if tracing {
                            self.tracer.record(cycle, cycle, w, op);
                        }
                        let b = &mut tile_barriers[tile];
                        b.waiting.push((w, cycle));
                        if b.waiting.len() == b.expected {
                            release(b, cycle, &mut sched, &mut self.mem.stats);
                        }
                        cur = sched.pop();
                        continue 'outer;
                    }
                    Op::GlobalBarrier => {
                        if tracing {
                            self.tracer.record(cycle, cycle, w, op);
                        }
                        let b = &mut global_barrier;
                        b.waiting.push((w, cycle));
                        if b.waiting.len() == b.expected {
                            release(b, cycle, &mut sched, &mut self.mem.stats);
                        }
                        cur = sched.pop();
                        continue 'outer;
                    }
                };
                if tracing {
                    self.tracer.record(cycle, done, w, op);
                }
                // Continue inline only if this worker would be popped
                // next anyway ((done, w) is the strict lexicographic
                // minimum) — otherwise yield to the scheduler. This
                // preserves the heap's exact issue order.
                match sched.step(done, w) {
                    Some(next) => {
                        cur = Some(next);
                        continue 'outer;
                    }
                    None => cycle = done,
                }
            }
        }

        let mut blocked: Vec<usize> = tile_barriers
            .iter()
            .flat_map(|b| b.waiting.iter().map(|&(w, _)| w as usize))
            .collect();
        blocked.extend(global_barrier.waiting.iter().map(|&(w, _)| w as usize));
        if !blocked.is_empty() {
            blocked.sort_unstable();
            return Err(SimError::BarrierDeadlock { blocked });
        }

        Ok(self.finish(last_done))
    }

    /// Shared run epilogue: syncs HBM counters, folds in the pending
    /// reconfiguration carry, and prices energy from the final stats
    /// (energy is a pure function of the stats, so it is identical no
    /// matter how the stats were produced).
    fn finish(&mut self, last_done: u64) -> SimReport {
        // HBM channel counters are synced once per run, not per access.
        self.mem.sync_hbm_stats();
        let stats = self.mem.stats.merge(&self.carry);
        self.carry = SimStats::default();
        self.carry_cycles = 0;
        let cycles = last_done;
        let geom = self.geometry();
        let ua = self.uarch();
        let energy = self
            .energy_model
            .breakdown(&stats, cycles, ua.freq_hz, geom);
        SimReport {
            geometry: geom,
            config: self.config(),
            cycles,
            seconds: cycles as f64 / ua.freq_hz,
            stats,
            energy,
        }
    }

    /// Runs a compiled [`Program`]: the pre-decoded twin of
    /// [`Machine::run`], with identical event-loop semantics and
    /// bit-for-bit identical cycle counts and statistics.
    ///
    /// Unlike [`Machine::run`], this path never records traces (compile
    /// once, replay many — callers wanting a trace use the stream-set
    /// path), and it may execute tiles on parallel host threads when the
    /// program and configuration allow it (see [`ExecMode`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GeometryMismatch`] /
    /// [`SimError::ProgramMismatch`] when the program was compiled for a
    /// different machine, [`SimError::Rejected`] when an attached lint
    /// verdict carries errors, and otherwise exactly the errors
    /// [`Machine::run`] would produce for the same streams.
    pub fn run_program(&mut self, prog: &Program) -> Result<SimReport, SimError> {
        let geom = self.geometry();
        if prog.geometry() != geom {
            return Err(SimError::GeometryMismatch {
                machine: geom,
                streams: prog.geometry(),
            });
        }
        if prog.hw() != self.config() || prog.uarch() != self.uarch() {
            return Err(SimError::ProgramMismatch {
                machine: self.config(),
                program: prog.hw(),
            });
        }
        if let Some(d) = prog.rejecting_diagnostics() {
            return Err(SimError::Rejected {
                diagnostics: d.to_vec(),
            });
        }
        // Steady-state memo: with no pending reconfiguration carry the
        // run is a pure function of (program, bank state) — begin_run
        // resets every other mutable structure. A repeat of the
        // recorded run reinstates its outcome; any other run from a
        // clean carry is recorded for the next repeat. Only programs
        // whose id has been seen before participate: a first-time id is
        // either a long-lived artifact on its cold run (nothing to hit
        // yet) or a per-call scratch recompile (can never hit), and
        // neither is worth a bank snapshot.
        let recurring = self.recent_ids.contains(&prog.id());
        if !recurring {
            if self.recent_ids.len() == RECENT_IDS {
                self.recent_ids.remove(0);
            }
            self.recent_ids.push(prog.id());
        }
        let memo_eligible =
            recurring && self.carry_cycles == 0 && self.carry == SimStats::default();
        if memo_eligible {
            let hit = self
                .steady
                .iter()
                .position(|s| s.program_id == prog.id() && self.mem.cache_state_matches(&s.pre));
            if let Some(i) = hit {
                let s = &self.steady[i];
                self.mem.begin_run();
                self.mem.restore(&s.post);
                self.mem.stats = s.post_stats;
                let epochs = s.epochs;
                let report = s.report.clone();
                self.steady_hits += 1;
                // Re-apply the recorded run's epoch-commit deltas: the
                // memo hit stands in for a full re-simulation, so the
                // cumulative counters must advance as one would have.
                self.epochs_proven += epochs.proven;
                self.epochs_replayed += epochs.replayed;
                self.epochs_rolled_back += epochs.rolled_back;
                return Ok(report);
            }
            self.steady_misses += 1;
        }
        let pre = memo_eligible.then(|| self.mem.cache_state());
        let epochs_before = self.epoch_stats();
        self.mem.begin_run();
        let start = self.carry_cycles;
        let mut lanes = prog.lanes(start);
        // Private-L2 configs are always epoch-parallel eligible (tiles
        // own their banks; the shadow-HBM replay validates the rest).
        // Shared-L2 configs become eligible when the static analyzer
        // proved every epoch interference-free.
        let all_proven = prog.analysis().is_some_and(|a| a.all_proven());
        let eligible = prog.parallel_ok()
            && (self.config().l2() == L2Mode::PrivateCache || all_proven)
            && geom.tiles() > 1
            && !lanes.is_empty();
        let parallel = match self.exec_mode {
            ExecMode::Sequential => false,
            ExecMode::ParallelTiles => eligible,
            ExecMode::Auto => {
                eligible && std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
            }
        };
        let last_done = if parallel {
            self.run_epochs(prog, &mut lanes, start)?
        } else {
            exec_span(&mut self.mem, prog, &mut lanes, 0, geom.tiles(), false)?;
            lanes
                .iter()
                .map(|l| match l.state {
                    LaneState::Finished(c) => c,
                    _ => unreachable!("sequential exec left a lane unfinished"),
                })
                .fold(start, u64::max)
        };
        let report = self.finish(last_done);
        if let Some(pre) = pre {
            if self.steady.len() == STEADY_ENTRIES {
                self.steady.remove(0);
            }
            self.steady.push(SteadyState {
                program_id: prog.id(),
                pre,
                post: self.mem.snapshot(),
                post_stats: self.mem.stats,
                epochs: EpochStats {
                    proven: self.epochs_proven - epochs_before.proven,
                    replayed: self.epochs_replayed - epochs_before.replayed,
                    rolled_back: self.epochs_rolled_back - epochs_before.rolled_back,
                },
                report: report.clone(),
            });
        }
        Ok(report)
    }

    /// Epoch-parallel driver. Epochs the static analyzer marked
    /// [`ParCommit::Proven`] commit without the shadow-HBM replay:
    /// single-mem-active-tile and disjoint-shared-line epochs execute
    /// directly (their parallel and sequential timings provably
    /// coincide), and disjoint-channel epochs run threaded and merge
    /// their shadow stacks after a cheap closure-mask check. Everything
    /// else keeps the dynamic check: between global barriers, each tile
    /// runs on its own host thread against its private banks and a
    /// shadow HBM; the merged HBM call log is then replayed against the
    /// real stack in sequential issue order. If every read completion
    /// matches, the epoch's timing is provably identical to sequential
    /// execution and it commits; otherwise the epoch is rolled back and
    /// re-run sequentially. Returns the run's final cycle.
    fn run_epochs(
        &mut self,
        prog: &Program,
        lanes: &mut [Lane],
        start: u64,
    ) -> Result<u64, SimError> {
        let tiles = self.geometry().tiles();
        let spm_latency = self.uarch().l1_latency;
        let nch = self.uarch().hbm_channels as u64;
        let mut epoch_idx = 0usize;
        loop {
            let verdict = prog
                .analysis()
                .and_then(|a| a.epochs().get(epoch_idx))
                .copied();
            if matches!(
                verdict,
                Some(ParCommit::Proven(
                    ProvenKind::SingleTile | ProvenKind::DisjointLines
                ))
            ) {
                // At most one tile reaches HBM this epoch (or, under a
                // shared L2, the tiles' line sets are disjoint), so
                // parallel and sequential timing provably coincide:
                // execute directly — no shadow state, no replay.
                exec_span(&mut self.mem, prog, lanes, 0, tiles, true)?;
                self.epochs_proven += 1;
            } else {
                self.run_epoch_threaded(
                    prog,
                    lanes,
                    matches!(
                        verdict,
                        Some(ParCommit::Proven(ProvenKind::DisjointChannels))
                    ),
                    nch,
                    spm_latency,
                )?;
            }

            // Epoch boundary: every lane is either done or parked at the
            // global barrier (congruence guarantees all-or-none).
            let mut max_fin = start;
            let mut n_glob = 0usize;
            let mut n_fin = 0usize;
            let mut release = 0u64;
            for l in lanes.iter() {
                match l.state {
                    LaneState::Finished(c) => {
                        n_fin += 1;
                        max_fin = max_fin.max(c);
                    }
                    LaneState::AtGlobal(c) => {
                        n_glob += 1;
                        release = release.max(c);
                    }
                    LaneState::Running => unreachable!("exec_span left a lane running"),
                }
            }
            if n_glob == 0 {
                return Ok(max_fin);
            }
            if n_fin > 0 {
                // Some workers finished while others wait at a global
                // barrier that can now never complete — the same
                // deadlock Machine::run reports.
                let mut blocked: Vec<usize> = lanes
                    .iter()
                    .filter_map(|l| {
                        matches!(l.state, LaneState::AtGlobal(_)).then_some(l.worker as usize)
                    })
                    .collect();
                blocked.sort_unstable();
                return Err(SimError::BarrierDeadlock { blocked });
            }
            for l in lanes.iter_mut() {
                let LaneState::AtGlobal(arrived) = l.state else {
                    unreachable!()
                };
                self.mem.stats.barrier_stall_cycles += release - arrived;
                l.cycle = release + 1;
                l.state = LaneState::Running;
            }
            epoch_idx += 1;
        }
    }

    /// Runs one epoch with every tile on its own host thread against a
    /// shadow HBM, then commits it: a [`ProvenKind::DisjointChannels`]
    /// epoch (`disjoint`) merges the shadow stacks directly once the
    /// call log passes the static channel-closure masks (only stale
    /// pre-program dirty-line writebacks can escape them); otherwise —
    /// or on a mask violation — the merged log is replayed against the
    /// real stack and the epoch rolls back to sequential execution on
    /// any read-completion mismatch.
    fn run_epoch_threaded(
        &mut self,
        prog: &Program,
        lanes: &mut [Lane],
        disjoint: bool,
        nch: u64,
        spm_latency: u64,
    ) -> Result<(), SimError> {
        let tiles = self.geometry().tiles();
        let snap = self.mem.snapshot();
        let epoch_start: Vec<Lane> = lanes.to_vec();
        type TileOut = (Vec<Lane>, SimStats, Vec<HbmCall>, Hbm);
        let (result, hbm_proto): (Result<Vec<TileOut>, SimError>, Hbm) = {
            let split = self.mem.split_tiles();
            let params = split.params;
            let hbm_proto = split.hbm.clone();
            let mut per_tile: Vec<Vec<Lane>> = vec![Vec::new(); tiles];
            for l in lanes.iter() {
                per_tile[l.tile as usize].push(*l);
            }
            let result = std::thread::scope(|s| {
                let handles: Vec<_> = split
                    .l1
                    .into_iter()
                    .zip(split.l2)
                    .zip(per_tile)
                    .enumerate()
                    .map(|(t, ((l1, l2), mut tl))| {
                        let hbm = hbm_proto.clone();
                        s.spawn(move || {
                            let mut ctx = TileExec::new(l1, l2, hbm, params, spm_latency);
                            exec_span(&mut ctx, prog, &mut tl, t, 1, true).map(|()| {
                                let (stats, log, shadow) = ctx.into_parts();
                                (tl, stats, log, shadow)
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            });
            (result, hbm_proto)
        };
        let committed = match result {
            Ok(outs) => {
                let masks = prog
                    .analysis()
                    .map(|a| a.tile_channel_masks())
                    .unwrap_or(&[]);
                let within_masks = disjoint
                    && masks.len() == tiles
                    && outs.iter().enumerate().all(|(t, (_, _, log, _))| {
                        log.iter().all(|c| masks[t] & (1u64 << (c.line % nch)) != 0)
                    });
                if within_masks {
                    // Every channel a logged call touched is owned by
                    // exactly one tile, so each shadow stack already
                    // holds that channel's exact sequential state:
                    // commit by merging, replay-free.
                    let shadows: Vec<Hbm> = outs.iter().map(|(_, _, _, h)| h.clone()).collect();
                    self.mem.hbm_mut().merge_disjoint(&hbm_proto, &shadows);
                    let mut cursors = vec![0usize; tiles];
                    for l in lanes.iter_mut() {
                        let t = l.tile as usize;
                        *l = outs[t].0[cursors[t]];
                        cursors[t] += 1;
                    }
                    for (_, stats, _, _) in &outs {
                        self.mem.stats = self.mem.stats.merge(stats);
                    }
                    self.epochs_proven += 1;
                    true
                } else {
                    let mut calls: Vec<HbmCall> = outs
                        .iter()
                        .flat_map(|(_, _, log, _)| log.iter().copied())
                        .collect();
                    // Sequential issue order: the event loop processes
                    // ops in (cycle, worker) lexicographic order, and
                    // one op's HBM calls happen in seq order.
                    calls.sort_unstable_by_key(|c| (c.cycle, c.worker, c.seq));
                    let hbm = self.mem.hbm_mut();
                    let mut reads_match = true;
                    for c in &calls {
                        let got = match c.kind {
                            HbmCallKind::Read => hbm.read(c.line, c.at),
                            HbmCallKind::Write => hbm.write(c.line, c.at),
                            HbmCallKind::Prefetch => hbm.prefetch(c.line, c.at),
                        };
                        if c.kind == HbmCallKind::Read && got != c.done {
                            reads_match = false;
                            break;
                        }
                    }
                    if reads_match {
                        let mut cursors = vec![0usize; tiles];
                        for l in lanes.iter_mut() {
                            let t = l.tile as usize;
                            *l = outs[t].0[cursors[t]];
                            cursors[t] += 1;
                        }
                        for (_, stats, _, _) in &outs {
                            self.mem.stats = self.mem.stats.merge(stats);
                        }
                    }
                    self.epochs_replayed += 1;
                    if !reads_match {
                        self.epochs_rolled_back += 1;
                    }
                    reads_match
                }
            }
            // A tile error (poison, deadlock) cannot occur for a
            // congruent program, but if it does the sequential
            // re-run below reproduces it deterministically.
            Err(_) => {
                self.epochs_replayed += 1;
                self.epochs_rolled_back += 1;
                false
            }
        };
        if !committed {
            self.mem.restore(&snap);
            lanes.copy_from_slice(&epoch_start);
            exec_span(&mut self.mem, prog, lanes, 0, tiles, true)?;
        }
        Ok(())
    }

    /// Lints `programs` against the machine's current configuration and,
    /// only if no error-severity diagnostic is found, runs them.
    ///
    /// `regions`, when given, enables the unmapped-address check (see
    /// [`verify::lint`]). The program set is borrowed, so callers can
    /// inspect or re-run it afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Rejected`] with every diagnostic when the
    /// linter finds errors, or any [`SimError`] the run itself produces.
    pub fn run_verified(
        &mut self,
        programs: &ProgramSet,
        regions: Option<&RegionMap>,
    ) -> Result<SimReport, SimError> {
        let geom = self.geometry();
        if programs.geometry() != geom {
            return Err(SimError::GeometryMismatch {
                machine: geom,
                streams: programs.geometry(),
            });
        }
        let diagnostics = verify::lint(programs, self.config(), self.uarch(), regions);
        if !verify::is_clean(&diagnostics) {
            return Err(SimError::Rejected { diagnostics });
        }
        self.run(programs.stream_set())
    }
}

pub(crate) fn release(b: &mut BarrierState, cycle: u64, sched: &mut Sched, stats: &mut SimStats) {
    for &(worker, arrived) in &b.waiting {
        stats.barrier_stall_cycles += cycle - arrived;
        sched.push(cycle + 1, worker);
    }
    b.waiting.clear();
}

fn diff(after: &SimStats, before: &SimStats) -> SimStats {
    SimStats {
        ops: after.ops - before.ops,
        loads: after.loads - before.loads,
        stores: after.stores - before.stores,
        spm_accesses: after.spm_accesses - before.spm_accesses,
        compute_cycles: after.compute_cycles - before.compute_cycles,
        mem_stall_cycles: after.mem_stall_cycles - before.mem_stall_cycles,
        barrier_stall_cycles: after.barrier_stall_cycles - before.barrier_stall_cycles,
        l1_hits: after.l1_hits - before.l1_hits,
        l1_misses: after.l1_misses - before.l1_misses,
        l2_hits: after.l2_hits - before.l2_hits,
        l2_misses: after.l2_misses - before.l2_misses,
        l2_writeback_installs: after.l2_writeback_installs - before.l2_writeback_installs,
        xbar_traversals: after.xbar_traversals - before.xbar_traversals,
        conflict_cycles: after.conflict_cycles - before.conflict_cycles,
        hbm_line_reads: after.hbm_line_reads - before.hbm_line_reads,
        hbm_line_writes: after.hbm_line_writes - before.hbm_line_writes,
        hbm_queue_cycles: after.hbm_queue_cycles - before.hbm_queue_cycles,
        prefetches: after.prefetches - before.prefetches,
        reconfigurations: after.reconfigurations - before.reconfigurations,
        reconfig_cycles: after.reconfig_cycles - before.reconfig_cycles,
        flush_writebacks: after.flush_writebacks - before.flush_writebacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamBuilder;

    fn machine(tiles: usize, pes: usize) -> Machine {
        Machine::new(Geometry::new(tiles, pes), MicroArch::paper())
    }

    #[test]
    fn empty_run_is_zero_cycles() {
        let mut m = machine(2, 4);
        let r = m.run(StreamSet::new(m.geometry())).unwrap();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.stats.ops, 0);
    }

    #[test]
    fn compute_only_stream_times_exactly() {
        let mut m = machine(1, 1);
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.compute(10).compute(5);
        s.set_pe(0, 0, p.into_stream());
        let r = m.run(s).unwrap();
        assert_eq!(r.cycles, 15);
        assert_eq!(r.stats.compute_cycles, 15);
        assert_eq!(r.stats.ops, 2);
    }

    #[test]
    fn parallel_workers_overlap() {
        let mut m = machine(2, 4);
        let mut s = StreamSet::new(m.geometry());
        for t in 0..2 {
            for pe in 0..4 {
                let mut p = StreamBuilder::new();
                p.compute(100);
                s.set_pe(t, pe, p.into_stream());
            }
        }
        let r = m.run(s).unwrap();
        assert_eq!(r.cycles, 100, "independent compute must overlap fully");
        assert_eq!(r.stats.compute_cycles, 800);
    }

    #[test]
    fn memory_stalls_counted() {
        let mut m = machine(1, 1);
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.load(0x1000);
        s.set_pe(0, 0, p.into_stream());
        let r = m.run(s).unwrap();
        assert!(r.cycles > 50, "cold load must reach HBM");
        assert!(r.stats.mem_stall_cycles > 0);
        assert_eq!(r.stats.loads, 1);
    }

    #[test]
    fn tile_barrier_synchronizes() {
        let mut m = machine(1, 2);
        let mut s = StreamSet::new(m.geometry());
        let mut fast = StreamBuilder::new();
        fast.compute(1).tile_barrier().compute(1);
        let mut slow = StreamBuilder::new();
        slow.compute(100).tile_barrier().compute(1);
        s.set_pe(0, 0, fast.into_stream());
        s.set_pe(0, 1, slow.into_stream());
        let r = m.run(s).unwrap();
        assert!(r.cycles >= 102, "fast PE must wait: {}", r.cycles);
        assert!(r.stats.barrier_stall_cycles >= 99);
    }

    #[test]
    fn tile_barriers_are_per_tile() {
        let mut m = machine(2, 1);
        let mut s = StreamSet::new(m.geometry());
        // Tile 0 barriers alone; tile 1 never barriers. Must not deadlock.
        let mut a = StreamBuilder::new();
        a.tile_barrier().compute(1);
        let mut b = StreamBuilder::new();
        b.compute(5);
        s.set_pe(0, 0, a.into_stream());
        s.set_pe(1, 0, b.into_stream());
        let r = m.run(s).unwrap();
        assert!(r.cycles >= 5);
    }

    #[test]
    fn global_barrier_includes_lcp() {
        let mut m = machine(2, 1);
        let mut s = StreamSet::new(m.geometry());
        for t in 0..2 {
            let mut p = StreamBuilder::new();
            p.compute(10).global_barrier().compute(1);
            s.set_pe(t, 0, p.into_stream());
        }
        let mut lcp = StreamBuilder::new();
        lcp.compute(50).global_barrier();
        s.set_lcp(0, lcp.into_stream());
        let r = m.run(s).unwrap();
        assert!(r.cycles >= 51, "PEs must wait for LCP: {}", r.cycles);
    }

    #[test]
    fn barrier_deadlock_detected() {
        let mut m = machine(1, 2);
        let mut s = StreamSet::new(m.geometry());
        let mut a = StreamBuilder::new();
        a.tile_barrier();
        let mut b = StreamBuilder::new();
        b.compute(1); // never barriers
        s.set_pe(0, 0, a.into_stream());
        s.set_pe(0, 1, b.into_stream());
        match m.run(s) {
            Err(SimError::BarrierDeadlock { blocked }) => assert_eq!(blocked, vec![0]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn lcp_tile_barrier_rejected() {
        let mut m = machine(1, 1);
        let mut s = StreamSet::new(m.geometry());
        let mut lcp = StreamBuilder::new();
        lcp.tile_barrier();
        s.set_lcp(0, lcp.into_stream());
        assert!(matches!(m.run(s), Err(SimError::LcpBarrier { tile: 0 })));
    }

    #[test]
    fn spm_without_spm_config_errors() {
        let mut m = machine(1, 1);
        assert_eq!(m.config(), HwConfig::Sc);
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.spm_load(0);
        s.set_pe(0, 0, p.into_stream());
        assert!(matches!(m.run(s), Err(SimError::SpmUnavailable { .. })));
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let mut m = machine(1, 1);
        let s = StreamSet::new(Geometry::new(2, 2));
        assert!(matches!(m.run(s), Err(SimError::GeometryMismatch { .. })));
    }

    #[test]
    fn reconfigure_cost_carried_into_next_run() {
        let mut m = machine(1, 2);
        // Dirty some lines so the flush has work.
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        for i in 0..64 {
            p.store(0x1000 + i * 64);
        }
        s.set_pe(0, 0, p.into_stream());
        let _ = m.run(s).unwrap();
        let cost = m.reconfigure(HwConfig::Ps);
        assert!(cost >= 10);
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.compute(5);
        s.set_pe(0, 0, p.into_stream());
        let r = m.run(s).unwrap();
        assert_eq!(r.cycles, cost + 5);
        assert_eq!(r.stats.reconfigurations, 1);
        assert!(r.stats.flush_writebacks > 0);
        // Carry cleared after use.
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.compute(5);
        s.set_pe(0, 0, p.into_stream());
        assert_eq!(m.run(s).unwrap().cycles, 5);
    }

    #[test]
    fn energy_reported_positive() {
        let mut m = machine(1, 1);
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.compute(100).load(0).load(4);
        s.set_pe(0, 0, p.into_stream());
        let r = m.run(s).unwrap();
        assert!(r.joules() > 0.0);
        assert!(r.watts() > 0.0);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn spm_run_in_scs() {
        let mut m = machine(1, 4);
        m.reconfigure(HwConfig::Scs);
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.spm_store(0).spm_load(0).spm_load(4);
        s.set_pe(0, 0, p.into_stream());
        let r = m.run(s).unwrap();
        assert_eq!(r.stats.spm_accesses, 3);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::op::{Op, StreamBuilder};

    #[test]
    fn lcp_only_stream_runs() {
        let mut m = Machine::new(Geometry::new(2, 2), MicroArch::paper());
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.compute(7).load(0x100).store(0x104);
        s.set_lcp(1, p.into_stream());
        let r = m.run(s).unwrap();
        assert!(r.cycles >= 7);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.stores, 1);
    }

    #[test]
    fn hbm_saturation_shows_in_queue_cycles() {
        // 32 PEs all streaming distinct regions: demand exceeds the 16
        // channels' service rate, so queue cycles must accumulate.
        let g = Geometry::new(4, 8);
        let mut m = Machine::new(g, MicroArch::paper());
        let mut s = StreamSet::new(g);
        for t in 0..4 {
            for pe in 0..8 {
                let base = (t * 8 + pe) as u64 * 0x100_0000;
                s.set_pe(t, pe, (0..2_000u64).map(move |i| Op::Load(base + i * 64)));
            }
        }
        let r = m.run(s).unwrap();
        assert!(
            r.stats.hbm_queue_cycles > 0,
            "no bandwidth pressure recorded"
        );
        assert!(r.stats.hbm_line_reads >= 32 * 2_000 / 2);
    }

    #[test]
    fn back_to_back_runs_keep_caches_warm() {
        let g = Geometry::new(1, 1);
        let mut m = Machine::new(g, MicroArch::paper());
        let make = || {
            // Pseudo-random lines (prefetch-immune) inside a 16 kB set
            // that fits in L1+L2.
            let mut p = StreamBuilder::new();
            let mut z = 0x1234_5678u64;
            for _ in 0..64u64 {
                z ^= z << 13;
                z ^= z >> 7;
                z ^= z << 17;
                p.load(0x4000 + (z % 256) * 64);
            }
            p.into_stream()
        };
        let mut s = StreamSet::new(g);
        s.set_pe(0, 0, make());
        let cold = m.run(s).unwrap();
        let mut s = StreamSet::new(g);
        s.set_pe(0, 0, make());
        let warm = m.run(s).unwrap();
        assert!(
            warm.cycles * 2 < cold.cycles,
            "second pass should hit: {} vs {}",
            warm.cycles,
            cold.cycles
        );
        // ... and reconfiguration flushes that warmth.
        m.reconfigure(HwConfig::Pc);
        m.reconfigure(HwConfig::Sc);
        let mut s = StreamSet::new(g);
        s.set_pe(0, 0, make());
        let reflushed = m.run(s).unwrap();
        assert!(reflushed.stats.l1_misses > warm.stats.l1_misses);
    }

    #[test]
    fn mixed_done_times_track_last_worker() {
        let g = Geometry::new(1, 4);
        let mut m = Machine::new(g, MicroArch::paper());
        let mut s = StreamSet::new(g);
        for pe in 0..4 {
            let mut p = StreamBuilder::new();
            p.compute(10 * (pe as u32 + 1));
            s.set_pe(0, pe, p.into_stream());
        }
        let r = m.run(s).unwrap();
        assert_eq!(r.cycles, 40);
    }

    #[test]
    fn report_seconds_match_frequency() {
        let g = Geometry::new(1, 1);
        let mut m = Machine::new(g, MicroArch::paper());
        let mut s = StreamSet::new(g);
        let mut p = StreamBuilder::new();
        p.compute(1_000);
        s.set_pe(0, 0, p.into_stream());
        let r = m.run(s).unwrap();
        assert!(
            (r.seconds - 1e-6).abs() < 1e-12,
            "1000 cycles @ 1 GHz = 1 µs"
        );
    }
}

#[cfg(test)]
mod program_tests {
    use super::*;
    use crate::op::StreamBuilder;

    /// A barrier-heavy workload mixing compute, strided and pseudo-random
    /// global traffic, SPM ops (when `spm`), tile and global barriers —
    /// the op mix CoSPARSE kernels produce.
    fn workload(geom: Geometry, spm: bool) -> Vec<(usize, Vec<Op>)> {
        let mut streams = Vec::new();
        for tile in 0..geom.tiles() {
            for pe in 0..geom.pes_per_tile() {
                let w = geom.pe_id(tile, pe);
                let mut b = StreamBuilder::new();
                let mut z = (w as u64 + 1) * 0x9e37_79b9;
                for phase in 0..3u64 {
                    for i in 0..40u64 {
                        z ^= z << 13;
                        z ^= z >> 7;
                        z ^= z << 17;
                        b.compute((z % 4) as u32 + 1);
                        let base = phase * 0x10_0000 + w as u64 * 0x2000;
                        b.load(base + i * 64);
                        if z.is_multiple_of(3) {
                            b.store(0x80_0000 + (z % 512) * 64);
                        } else {
                            b.load(0x40_0000 + (z % 2048) * 64);
                        }
                        if spm && z.is_multiple_of(5) {
                            b.spm_store((z % 256) as u32 * 4);
                            b.spm_load((z % 256) as u32 * 4);
                        }
                    }
                    b.tile_barrier();
                    if phase < 2 {
                        b.global_barrier();
                    }
                }
                streams.push((w, b.into_stream().collect()));
            }
            let mut lcp = StreamBuilder::new();
            lcp.compute(5);
            for phase in 0..3u64 {
                lcp.load(0xC0_0000 + tile as u64 * 0x1000 + phase * 64);
                lcp.store(0xC8_0000 + tile as u64 * 0x1000 + phase * 64);
                if phase < 2 {
                    lcp.global_barrier();
                }
            }
            streams.push((geom.lcp_id(tile), lcp.into_stream().collect()));
        }
        streams
    }

    fn stream_set(geom: Geometry, streams: &[(usize, Vec<Op>)]) -> StreamSet<'_> {
        let mut s = StreamSet::new(geom);
        for (w, ops) in streams {
            let (tile, pe) = geom.locate(*w);
            match pe {
                Some(pe) => s.set_pe_ops(tile, pe, ops),
                None => s.set_lcp_ops(tile, ops),
            }
        }
        s
    }

    fn run_all_modes(hw: HwConfig) {
        let geom = Geometry::new(2, 4);
        let spm = matches!(hw, HwConfig::Scs | HwConfig::Ps);
        let streams = workload(geom, spm);

        let prog = Program::compile(
            geom,
            hw,
            &MicroArch::paper(),
            streams.iter().map(|(w, v)| (*w, v.as_slice())),
        );
        for mode in [ExecMode::Sequential, ExecMode::ParallelTiles] {
            let mut legacy = Machine::new(geom, MicroArch::paper());
            legacy.reconfigure(hw);
            let mut m = Machine::new(geom, MicroArch::paper());
            m.reconfigure(hw);
            m.set_exec_mode(mode);
            // Four runs: cold, warm, then steady state — where a run may
            // be served from the steady-state memo. Every one must match
            // the legacy event loop bit for bit.
            for run in 0..4 {
                let want = legacy.run(stream_set(geom, &streams)).unwrap();
                let got = m.run_program(&prog).unwrap();
                assert_eq!(
                    got.cycles, want.cycles,
                    "{hw:?} {mode:?} run {run} cycle drift"
                );
                assert_eq!(
                    got.stats, want.stats,
                    "{hw:?} {mode:?} run {run} stats drift"
                );
            }
        }
    }

    #[test]
    fn program_matches_run_sc() {
        run_all_modes(HwConfig::Sc);
    }

    #[test]
    fn program_matches_run_scs() {
        run_all_modes(HwConfig::Scs);
    }

    #[test]
    fn program_matches_run_pc() {
        run_all_modes(HwConfig::Pc);
    }

    #[test]
    fn program_matches_run_ps() {
        run_all_modes(HwConfig::Ps);
    }

    /// A working set small enough to be fully resident: the bank state
    /// reaches its behavioral fixed point after the first warm run, so
    /// every later identical run must be served from the memo — and the
    /// memoized reports must still match the legacy event loop exactly.
    #[test]
    fn steady_state_memo_hits_and_matches_legacy() {
        let geom = Geometry::new(2, 4);
        let mut streams: Vec<(usize, Vec<Op>)> = Vec::new();
        for tile in 0..geom.tiles() {
            for pe in 0..geom.pes_per_tile() {
                let w = geom.pe_id(tile, pe);
                let mut b = StreamBuilder::new();
                for i in 0..16u64 {
                    b.compute(2);
                    b.load(w as u64 * 0x1000 + i * 64);
                    if i % 4 == 0 {
                        b.store(0x20_0000 + w as u64 * 0x1000 + i * 64);
                    }
                }
                b.tile_barrier();
                streams.push((w, b.into_stream().collect()));
            }
        }
        let prog = Program::compile(
            geom,
            HwConfig::Pc,
            &MicroArch::paper(),
            streams.iter().map(|(w, v)| (*w, v.as_slice())),
        );
        let mut legacy = Machine::new(geom, MicroArch::paper());
        legacy.reconfigure(HwConfig::Pc);
        let mut m = Machine::new(geom, MicroArch::paper());
        m.reconfigure(HwConfig::Pc);
        for run in 0..5 {
            let want = legacy.run(stream_set(geom, &streams)).unwrap();
            let got = m.run_program(&prog).unwrap();
            assert_eq!(got, want, "run {run} diverged from the legacy loop");
        }
        // Run 0 carries the reconfiguration cost (no memo); the bank
        // state then needs one warm run to fix (cold-run prefetches age
        // out of the LRU order), so runs 3-4 replay the memo.
        assert!(m.steady_hits() >= 2, "steady-state memo never engaged");
        let hits = m.steady_hits();

        // A recompiled program gets a fresh identity: the stale memo must
        // not serve it, and the re-simulated run must still agree.
        let mut prog2 = prog.clone();
        prog2.recompile(
            geom,
            HwConfig::Pc,
            &MicroArch::paper(),
            streams.iter().map(|(w, v)| (*w, v.as_slice())),
        );
        let want = legacy.run(stream_set(geom, &streams)).unwrap();
        let got = m.run_program(&prog2).unwrap();
        assert_eq!(got, want, "recompiled program diverged");
        assert_eq!(
            m.steady_hits(),
            hits,
            "stale memo served a recompiled program"
        );
    }

    /// Pins the epoch-counter fix: a steady-state memo hit skips
    /// `run_epochs`, but it must still advance [`Machine::epoch_stats`]
    /// by the recorded run's deltas — otherwise long epoch-parallel
    /// workloads under-report commits as soon as the memo engages
    /// (the original bug: counters froze at the warm-run value while
    /// memo hits accumulated). Also pins the legitimate zero: in
    /// [`ExecMode::Sequential`] no epochs are ever committed, so the
    /// counters stay exactly zero.
    #[test]
    fn memo_hits_advance_epoch_counters() {
        let geom = Geometry::new(2, 4);
        let mut streams: Vec<(usize, Vec<Op>)> = Vec::new();
        for tile in 0..geom.tiles() {
            for pe in 0..geom.pes_per_tile() {
                let w = geom.pe_id(tile, pe);
                let mut b = StreamBuilder::new();
                for i in 0..16u64 {
                    b.compute(2);
                    b.load(w as u64 * 0x1000 + i * 64);
                    if i % 4 == 0 {
                        b.store(0x20_0000 + w as u64 * 0x1000 + i * 64);
                    }
                }
                b.tile_barrier();
                streams.push((w, b.into_stream().collect()));
            }
        }
        // PC: private L2, always epoch-parallel eligible.
        let prog = Program::compile(
            geom,
            HwConfig::Pc,
            &MicroArch::paper(),
            streams.iter().map(|(w, v)| (*w, v.as_slice())),
        );

        let mut m = Machine::new(geom, MicroArch::paper());
        m.set_exec_mode(ExecMode::ParallelTiles);
        m.reconfigure(HwConfig::Pc);
        let mut per_run: Vec<(u64, u64)> = Vec::new();
        let mut prev = m.epoch_stats();
        for _ in 0..6 {
            m.run_program(&prog).unwrap();
            let now = m.epoch_stats();
            per_run.push((now.proven - prev.proven, now.replayed - prev.replayed));
            prev = now;
        }
        assert!(m.steady_hits() >= 2, "memo never engaged; test is vacuous");
        let per_commit = per_run[0].0 + per_run[0].1;
        assert!(
            per_commit > 0,
            "program committed no epochs; test is vacuous"
        );
        // Every run — simulated or memo-served — advances the counters
        // by the same per-run delta (the simulation is deterministic).
        for (run, d) in per_run.iter().enumerate() {
            assert_eq!(
                *d, per_run[0],
                "run {run} epoch delta {d:?} != run 0 delta {:?} (memo hit froze the counters?)",
                per_run[0]
            );
        }

        // Sequential execution commits no epochs: zero is the correct
        // report there, not a counter bug.
        let mut seq = Machine::new(geom, MicroArch::paper());
        seq.set_exec_mode(ExecMode::Sequential);
        seq.reconfigure(HwConfig::Pc);
        for _ in 0..3 {
            seq.run_program(&prog).unwrap();
        }
        assert_eq!(seq.epoch_stats(), EpochStats::default());
    }

    /// Diagnostic for the ROADMAP note that memo periods above the ring
    /// capacity "wander chaotically" under SC: the memo ring is a FIFO
    /// of [`STEADY_ENTRIES`] snapshots, so a program whose recurrence
    /// period exceeds the capacity has its snapshot evicted before it
    /// comes around again and can *never* hit — every eligible run is a
    /// miss, which reads as chaotic wandering from the outside. The same
    /// workloads interleaved with a period inside the capacity hit fine.
    /// (The dense-IP flavor of this: one program whose *bank-state*
    /// trajectory has a long limit cycle — same capacity math, one id.)
    #[test]
    fn steady_memo_wanders_past_ring_capacity() {
        let geom = Geometry::new(2, 4);
        let build = |k: u64| {
            let mut streams: Vec<(usize, Vec<Op>)> = Vec::new();
            for tile in 0..geom.tiles() {
                for pe in 0..geom.pes_per_tile() {
                    let w = geom.pe_id(tile, pe);
                    let mut b = StreamBuilder::new();
                    for i in 0..8u64 {
                        b.compute(1);
                        // Distinct per-program working sets.
                        b.load(k * 0x10_0000 + w as u64 * 0x1000 + i * 64);
                    }
                    streams.push((w, b.into_stream().collect()));
                }
            }
            Program::compile(
                geom,
                HwConfig::Sc,
                &MicroArch::paper(),
                streams.iter().map(|(w, v)| (*w, v.as_slice())),
            )
        };
        let run_cycle = |count: usize| {
            let progs: Vec<Program> = (0..count as u64).map(build).collect();
            let mut m = Machine::new(geom, MicroArch::paper());
            m.reconfigure(HwConfig::Sc);
            for _ in 0..6 {
                for p in &progs {
                    m.run_program(p).unwrap();
                }
            }
            m.memo_stats()
        };

        // Recurrence period within the ring: the memo engages once each
        // program's bank state fixes.
        let inside = run_cycle(STEADY_ENTRIES / 2);
        assert!(
            inside.hits > 0,
            "period {} should fit the {}-entry ring: {:?}",
            STEADY_ENTRIES / 2,
            STEADY_ENTRIES,
            inside
        );

        // Recurrence period past the ring: every snapshot is evicted
        // before its program recurs — misses only, forever.
        let outside = run_cycle(STEADY_ENTRIES + 4);
        assert_eq!(
            outside.hits,
            0,
            "period {} cannot fit the {}-entry FIFO ring: {:?}",
            STEADY_ENTRIES + 4,
            STEADY_ENTRIES,
            outside
        );
        assert!(
            outside.misses > inside.misses,
            "the over-capacity cycle should miss on every eligible run"
        );
    }

    #[test]
    fn parallel_tiles_actually_eligible() {
        let geom = Geometry::new(2, 4);
        let streams = workload(geom, false);
        let prog = Program::compile(
            geom,
            HwConfig::Pc,
            &MicroArch::paper(),
            streams.iter().map(|(w, v)| (*w, v.as_slice())),
        );
        assert!(
            prog.parallel_ok(),
            "workload must exercise the parallel core"
        );
    }

    #[test]
    fn program_mismatch_rejected() {
        let geom = Geometry::new(1, 2);
        let mut b = StreamBuilder::new();
        b.compute(1);
        let ops: Vec<Op> = b.into_stream().collect();
        let prog = Program::compile(
            geom,
            HwConfig::Pc,
            &MicroArch::paper(),
            [(0usize, ops.as_slice())],
        );
        let mut m = Machine::new(geom, MicroArch::paper());
        assert!(matches!(
            m.run_program(&prog),
            Err(SimError::ProgramMismatch { .. })
        ));
        let other = Program::compile(
            Geometry::new(2, 2),
            HwConfig::Sc,
            &MicroArch::paper(),
            [(0usize, ops.as_slice())],
        );
        assert!(matches!(
            m.run_program(&other),
            Err(SimError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn poisoned_program_reproduces_run_errors() {
        let geom = Geometry::new(1, 2);
        let mut spm = StreamBuilder::new();
        spm.compute(2).spm_load(0);
        let spm_ops: Vec<Op> = spm.into_stream().collect();
        let prog = Program::compile(
            geom,
            HwConfig::Sc,
            &MicroArch::paper(),
            [(0usize, spm_ops.as_slice())],
        );
        let mut m = Machine::new(geom, MicroArch::paper());
        assert!(matches!(
            m.run_program(&prog),
            Err(SimError::SpmUnavailable {
                config: HwConfig::Sc,
                worker: 0
            })
        ));

        let mut bar = StreamBuilder::new();
        bar.tile_barrier();
        let bar_ops: Vec<Op> = bar.into_stream().collect();
        let prog = Program::compile(
            geom,
            HwConfig::Sc,
            &MicroArch::paper(),
            [(geom.lcp_id(0), bar_ops.as_slice())],
        );
        assert!(matches!(
            m.run_program(&prog),
            Err(SimError::LcpBarrier { tile: 0 })
        ));

        // Mismatched tile-barrier counts deadlock, as in run().
        let mut a = StreamBuilder::new();
        a.tile_barrier();
        let a_ops: Vec<Op> = a.into_stream().collect();
        let mut b = StreamBuilder::new();
        b.compute(1);
        let b_ops: Vec<Op> = b.into_stream().collect();
        let prog = Program::compile(
            geom,
            HwConfig::Sc,
            &MicroArch::paper(),
            [(0usize, a_ops.as_slice()), (1usize, b_ops.as_slice())],
        );
        match m.run_program(&prog) {
            Err(SimError::BarrierDeadlock { blocked }) => assert_eq!(blocked, vec![0]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn rejected_lint_travels_with_program() {
        let geom = Geometry::new(1, 1);
        let mut b = StreamBuilder::new();
        b.spm_load(0);
        let ops: Vec<Op> = b.into_stream().collect();
        let mut prog = Program::compile(
            geom,
            HwConfig::Sc,
            &MicroArch::paper(),
            [(0usize, ops.as_slice())],
        );
        let mut set = verify::ProgramSet::new(geom);
        set.set_pe(0, 0, ops.iter().copied());
        let diags = verify::lint(&set, HwConfig::Sc, &MicroArch::paper(), None);
        assert!(!verify::is_clean(&diags));
        prog.attach_lint(diags);
        let mut m = Machine::new(geom, MicroArch::paper());
        assert!(matches!(
            m.run_program(&prog),
            Err(SimError::Rejected { .. })
        ));
    }

    #[test]
    fn reconfigure_carry_included_in_program_run() {
        let geom = Geometry::new(1, 2);
        let mut m = Machine::new(geom, MicroArch::paper());
        let mut s = StreamSet::new(geom);
        let mut p = StreamBuilder::new();
        for i in 0..64 {
            p.store(0x1000 + i * 64);
        }
        s.set_pe(0, 0, p.into_stream());
        let _ = m.run(s).unwrap();
        let cost = m.reconfigure(HwConfig::Ps);
        assert!(cost >= 10);
        let mut b = StreamBuilder::new();
        b.compute(5);
        let ops: Vec<Op> = b.into_stream().collect();
        let prog = Program::compile(
            geom,
            HwConfig::Ps,
            &MicroArch::paper(),
            [(0usize, ops.as_slice())],
        );
        let r = m.run_program(&prog).unwrap();
        assert_eq!(r.cycles, cost + 5);
        assert_eq!(r.stats.reconfigurations, 1);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::op::{Op, StreamBuilder};
    use crate::trace::TraceConfig;

    #[test]
    fn trace_captures_op_sequence() {
        let mut m = Machine::new(Geometry::new(1, 2), MicroArch::paper());
        m.set_trace(Some(TraceConfig::default()));
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.compute(3).load(0x40).store(0x44);
        s.set_pe(0, 0, p.into_stream());
        let mut q = StreamBuilder::new();
        q.compute(1);
        s.set_pe(0, 1, q.into_stream());
        let _ = m.run(s).unwrap();
        let trace = m.take_trace();
        assert_eq!(trace.len(), 4);
        let pe0: Vec<Op> = trace
            .iter()
            .filter(|e| e.worker == 0)
            .map(|e| e.op)
            .collect();
        assert_eq!(pe0, vec![Op::Compute(3), Op::Load(0x40), Op::Store(0x44)]);
        // Events are causally ordered per worker.
        let mut last = 0;
        for e in trace.iter().filter(|e| e.worker == 0) {
            assert!(e.cycle >= last);
            assert!(e.done >= e.cycle);
            last = e.done;
        }
    }

    #[test]
    fn trace_disabled_by_default_and_after_take() {
        let mut m = Machine::new(Geometry::new(1, 1), MicroArch::paper());
        let mut s = StreamSet::new(m.geometry());
        let mut p = StreamBuilder::new();
        p.compute(1);
        s.set_pe(0, 0, p.into_stream());
        let _ = m.run(s).unwrap();
        assert!(m.take_trace().is_empty());
    }

    #[test]
    fn trace_filters_by_worker() {
        let mut m = Machine::new(Geometry::new(1, 2), MicroArch::paper());
        m.set_trace(Some(TraceConfig {
            workers: Some(vec![1]),
            max_events: 100,
        }));
        let mut s = StreamSet::new(m.geometry());
        for pe in 0..2 {
            let mut p = StreamBuilder::new();
            p.compute(2);
            s.set_pe(0, pe, p.into_stream());
        }
        let _ = m.run(s).unwrap();
        let trace = m.take_trace();
        assert!(trace.iter().all(|e| e.worker == 1));
        assert_eq!(trace.len(), 1);
    }
}
