//! Static stream verification and trace race detection.
//!
//! Two independent analyses of kernel correctness, both exact with
//! respect to the simulator's semantics:
//!
//! * [`lint`] checks a materialized [`ProgramSet`] against a hardware
//!   configuration, microarchitecture and optional address map
//!   *without running it*. Its error-severity diagnostics are precisely
//!   the conditions under which [`crate::Machine::run`] would fail (or
//!   silently accept an out-of-contract stream): incongruent barrier
//!   sequences that deadlock, SPM ops without a scratchpad, SPM offsets
//!   past the configured capacity, LCP tile barriers, LCP SPM ops, and
//!   global accesses outside the mapped regions.
//!
//! * [`detect_races`] builds a barrier-epoch happens-before relation
//!   over a recorded trace (see [`crate::TraceEvent`]) and flags pairs
//!   of same-word accesses by different workers that are unordered and
//!   not both loads. Because the simulator replays address streams (no
//!   data), a race here means the *kernel generator* emitted an access
//!   pattern whose result would depend on timing on the real machine.
//!
//! The contract between the two layers: a stream set that lints clean
//! under a legal configuration runs to completion, and a shipped kernel
//! must additionally produce a race-free trace.

use crate::config::{Geometry, HwConfig, L1Mode, MicroArch};
use crate::machine::{StreamSet, WorkerStream};
use crate::op::{Addr, Op, OpStream};
use crate::trace::TraceEvent;
use std::collections::HashMap;
use std::fmt;

/// How serious a lint finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable (e.g. a zero-cycle compute burst, which
    /// the machine silently clamps to one cycle).
    Warning,
    /// The run would fail, panic, or access memory out of contract.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What a lint diagnostic is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintKind {
    /// Two PEs of the same tile disagree on their barrier sequences —
    /// the run would end in [`crate::SimError::BarrierDeadlock`].
    BarrierMismatch {
        /// Tile whose PEs disagree.
        tile: usize,
        /// Reference worker the sequence is compared against.
        reference: usize,
        /// Barrier index (position in the stream's barrier projection)
        /// where the sequences first diverge.
        barrier_index: usize,
    },
    /// Workers disagree on their global-barrier counts — the run would
    /// end in [`crate::SimError::BarrierDeadlock`].
    GlobalBarrierMismatch {
        /// Reference worker the count is compared against.
        reference: usize,
        /// The reference worker's global-barrier count.
        expected: usize,
        /// This worker's global-barrier count.
        found: usize,
    },
    /// An LCP stream contains a tile barrier (tile barriers synchronize
    /// PEs only) — the run would fail with [`crate::SimError::LcpBarrier`].
    LcpTileBarrier,
    /// An SPM op under a cache-only configuration — the run would fail
    /// with [`crate::SimError::SpmUnavailable`].
    SpmUnavailable {
        /// The active configuration.
        config: HwConfig,
    },
    /// An LCP stream contains an SPM op; LCPs have no scratchpad port
    /// (the memory system treats this as a contract violation).
    LcpSpmAccess,
    /// An SPM offset at or past the configured scratchpad capacity. The
    /// simulator wraps such offsets modulo the bank size, silently
    /// aliasing unrelated kernel state.
    SpmOffsetOutOfRange {
        /// The offending byte offset.
        offset: u32,
        /// Configured capacity in bytes (per tile for SCS, per PE for PS).
        capacity: usize,
    },
    /// A global load/store outside every mapped [`RegionMap`] region.
    UnmappedAddress {
        /// The offending byte address.
        addr: Addr,
    },
    /// `Compute(0)`: the machine clamps it to one cycle, so the kernel's
    /// cost model and the simulated timing disagree.
    ZeroCycleCompute,
    /// The configuration itself is unrealisable on this geometry (SCS
    /// needs at least two L1 banks per tile to split cache from SPM).
    UnsupportedConfig {
        /// The active configuration.
        config: HwConfig,
    },
    /// A global-memory store provably overwritten before any worker
    /// reads it ([`crate::analyze`]; private-L2 configs only, where the
    /// analysis is word-granular).
    DeadStore {
        /// Byte address of the dead store.
        addr: Addr,
    },
    /// A scratchpad write whose slot is never read back before the next
    /// overwrite or the end of the program ([`crate::analyze`]).
    DeadSpmWrite {
        /// Byte offset of the dead SPM write.
        offset: u32,
    },
    /// Two workers store to the same location in different epochs with
    /// no intervening read: the first value is lost unseen
    /// ([`crate::analyze`]).
    CrossEpochWriteHazard {
        /// Byte address of the hazard (line-granular under a shared L2).
        addr: Addr,
        /// First store's provenance: `(worker, epoch, pc)`.
        first: (usize, usize, usize),
        /// Overwriting store's provenance: `(worker, epoch, pc)`.
        second: (usize, usize, usize),
    },
    /// A global barrier separating epochs with no cross-worker
    /// dependence between them — an elision candidate for
    /// [`crate::ProgramBuilder::elide_proven_barriers`]
    /// ([`crate::analyze`]).
    RedundantBarrier {
        /// 0-based ordinal of the redundant global barrier.
        barrier_index: usize,
    },
}

/// One lint finding, attached to a worker and (where meaningful) an op
/// position within that worker's stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Global worker id the finding is about.
    pub worker: usize,
    /// Position of the offending op in the worker's stream, if the
    /// finding is about a specific op.
    pub position: Option<usize>,
    /// Finding severity.
    pub severity: Severity,
    /// What was found.
    pub kind: LintKind,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: worker {}", self.severity, self.worker)?;
        if let Some(p) = self.position {
            write!(f, ", op {p}")?;
        }
        write!(f, ": ")?;
        match &self.kind {
            LintKind::BarrierMismatch {
                tile,
                reference,
                barrier_index,
            } => write!(
                f,
                "barrier sequence diverges from tile {tile}'s reference PE (worker \
                 {reference}) at barrier {barrier_index}; the run would deadlock"
            ),
            LintKind::GlobalBarrierMismatch {
                reference,
                expected,
                found,
            } => write!(
                f,
                "{found} global barrier(s), but worker {reference} has {expected}; \
                 the run would deadlock"
            ),
            LintKind::LcpTileBarrier => {
                write!(
                    f,
                    "LCP issues a tile barrier (tile barriers synchronize PEs only)"
                )
            }
            LintKind::SpmUnavailable { config } => {
                write!(f, "SPM op under {config}, which exposes no scratchpad")
            }
            LintKind::LcpSpmAccess => write!(f, "LCP issues an SPM op (LCPs have no SPM port)"),
            LintKind::SpmOffsetOutOfRange { offset, capacity } => write!(
                f,
                "SPM offset {offset} outside the configured {capacity}-byte scratchpad"
            ),
            LintKind::UnmappedAddress { addr } => {
                write!(f, "global access to {addr:#x} outside every mapped region")
            }
            LintKind::ZeroCycleCompute => {
                write!(f, "Compute(0) burst; the machine clamps it to 1 cycle")
            }
            LintKind::UnsupportedConfig { config } => {
                write!(f, "{config} is unrealisable on this geometry")
            }
            LintKind::DeadStore { addr } => {
                write!(f, "store to {addr:#x} is dead: overwritten before any read")
            }
            LintKind::DeadSpmWrite { offset } => {
                write!(f, "spm store at offset {offset} is dead: never read back")
            }
            LintKind::CrossEpochWriteHazard {
                addr,
                first,
                second,
            } => write!(
                f,
                "cross-epoch write-write hazard on {addr:#x}: worker {} (epoch {}, op {}) \
                 overwritten by worker {} (epoch {}, op {}) with no intervening read",
                first.0, first.1, first.2, second.0, second.1, second.2
            ),
            LintKind::RedundantBarrier { barrier_index } => write!(
                f,
                "global barrier {barrier_index} separates provably independent epochs; \
                 elision candidate"
            ),
        }
    }
}

/// A named, half-open `[start, start + bytes)` slice of the simulated
/// global address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name, used in diagnostics and reports.
    pub name: &'static str,
    /// First byte address.
    pub start: Addr,
    /// Length in bytes.
    pub bytes: u64,
}

/// The set of address regions a kernel is allowed to touch.
///
/// The linter checks every `Load`/`Store` against this map; the race
/// detector uses it only to *name* racy addresses in reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionMap {
    regions: Vec<Region>,
}

impl RegionMap {
    /// An empty map (every access is unmapped).
    pub fn new() -> Self {
        RegionMap::default()
    }

    /// Adds a region. Zero-length regions are kept but match nothing.
    pub fn add(&mut self, name: &'static str, start: Addr, bytes: u64) -> &mut Self {
        self.regions.push(Region { name, start, bytes });
        self
    }

    /// The mapped regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing the word at `addr` (the access must fit:
    /// `addr + word_bytes` must not run past the region's end).
    pub fn locate(&self, addr: Addr, word_bytes: u64) -> Option<&Region> {
        self.regions
            .iter()
            .find(|r| addr >= r.start && addr + word_bytes <= r.start + r.bytes)
    }

    /// True if the word at `addr` lies inside some region.
    pub fn contains(&self, addr: Addr, word_bytes: u64) -> bool {
        self.locate(addr, word_bytes).is_some()
    }
}

/// A fully materialized stream set: every worker's ops in a buffer, so
/// they can be inspected by [`lint`] and still executed afterwards.
///
/// [`StreamSet`] holds lazy single-pass iterators; verification needs
/// two passes (analyse, then run), hence this owned form.
#[derive(Debug, Clone, Default)]
pub struct ProgramSet {
    geom: Option<Geometry>,
    programs: Vec<Option<Vec<Op>>>,
}

impl ProgramSet {
    /// Creates an empty set for `geom` (no worker has a stream).
    pub fn new(geom: Geometry) -> Self {
        ProgramSet {
            geom: Some(geom),
            programs: vec![None; geom.total_workers()],
        }
    }

    /// Drains a lazy [`StreamSet`] into buffers.
    pub fn materialize(streams: StreamSet<'_>) -> Self {
        let geom = streams.geometry();
        let mut set = ProgramSet::new(geom);
        set.programs = streams
            .into_streams()
            .into_iter()
            .map(|s| s.map(|iter| iter.collect::<Vec<Op>>()))
            .collect();
        set
    }

    /// Assigns PE `(tile, pe)`'s ops.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set_pe(&mut self, tile: usize, pe: usize, ops: impl IntoIterator<Item = Op>) {
        let id = self.geometry().pe_id(tile, pe);
        self.programs[id] = Some(ops.into_iter().collect());
    }

    /// Assigns tile `tile`'s LCP ops.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn set_lcp(&mut self, tile: usize, ops: impl IntoIterator<Item = Op>) {
        let id = self.geometry().lcp_id(tile);
        self.programs[id] = Some(ops.into_iter().collect());
    }

    /// Geometry this set was built for.
    ///
    /// # Panics
    ///
    /// Panics on a `Default`-constructed (geometry-less) set.
    pub fn geometry(&self) -> Geometry {
        self.geom
            .expect("ProgramSet has no geometry; construct it with new() or materialize()")
    }

    /// Worker `w`'s ops, if it has a stream.
    pub fn worker(&self, w: usize) -> Option<&[Op]> {
        self.programs.get(w).and_then(|p| p.as_deref())
    }

    /// Borrows the buffers as a runnable [`StreamSet`] (the set can be
    /// re-run any number of times). The streams replay the buffers as
    /// slices, so re-running verified programs costs no per-op dispatch.
    pub fn stream_set(&self) -> StreamSet<'_> {
        let geom = self.geometry();
        let streams = self
            .programs
            .iter()
            .map(|p| p.as_ref().map(|ops| WorkerStream::Slice(ops.iter())))
            .collect();
        StreamSet::from_streams(geom, streams)
    }

    /// Consumes the buffers into an owned [`StreamSet`].
    pub fn into_stream_set(self) -> StreamSet<'static> {
        let geom = self.geometry();
        let streams = self
            .programs
            .into_iter()
            .map(|p| {
                p.map(|ops| WorkerStream::Boxed(Box::new(ops.into_iter()) as Box<dyn OpStream>))
            })
            .collect();
        StreamSet::from_streams(geom, streams)
    }
}

/// Statically checks `programs` against the configuration the machine
/// would run them under. Returns every finding; the set is safe to run
/// iff no finding has [`Severity::Error`].
///
/// `regions` enables the unmapped-address check; pass `None` when the
/// kernel's address map is unknown (e.g. hand-written test streams).
pub fn lint(
    programs: &ProgramSet,
    hw: HwConfig,
    ua: &MicroArch,
    regions: Option<&RegionMap>,
) -> Vec<Diagnostic> {
    let geom = programs.geometry();
    let mut diags = Vec::new();

    if hw == HwConfig::Scs && geom.pes_per_tile() < 2 {
        diags.push(Diagnostic {
            worker: 0,
            position: None,
            severity: Severity::Error,
            kind: LintKind::UnsupportedConfig { config: hw },
        });
        // The capacity math below is meaningless on this geometry.
        return diags;
    }

    let has_spm = !matches!(hw.l1(), L1Mode::SharedCache | L1Mode::PrivateCache);
    let spm_capacity = match hw.l1() {
        L1Mode::SharedCacheSpm => ua.spm_bytes_per_tile(geom.pes_per_tile(), hw.l1()),
        L1Mode::PrivateSpm => ua.spm_bytes_per_pe(hw.l1()),
        _ => 0,
    };
    let word = ua.word_bytes as u64;

    // Per-op checks, and per-worker barrier projections for the
    // congruence checks below.
    let mut barrier_seqs: Vec<Option<Vec<Op>>> = vec![None; geom.total_workers()];
    for (w, seq_slot) in barrier_seqs.iter_mut().enumerate() {
        let Some(ops) = programs.worker(w) else {
            continue;
        };
        let (_, pe) = geom.locate(w);
        let is_lcp = pe.is_none();
        let mut barriers = Vec::new();
        for (pos, &op) in ops.iter().enumerate() {
            match op {
                Op::Compute(0) => diags.push(Diagnostic {
                    worker: w,
                    position: Some(pos),
                    severity: Severity::Warning,
                    kind: LintKind::ZeroCycleCompute,
                }),
                Op::Compute(_) => {}
                Op::Load(addr) | Op::Store(addr) => {
                    if let Some(map) = regions {
                        if !map.contains(addr, word) {
                            diags.push(Diagnostic {
                                worker: w,
                                position: Some(pos),
                                severity: Severity::Error,
                                kind: LintKind::UnmappedAddress { addr },
                            });
                        }
                    }
                }
                Op::SpmLoad(off) | Op::SpmStore(off) => {
                    if !has_spm {
                        diags.push(Diagnostic {
                            worker: w,
                            position: Some(pos),
                            severity: Severity::Error,
                            kind: LintKind::SpmUnavailable { config: hw },
                        });
                    } else if is_lcp {
                        diags.push(Diagnostic {
                            worker: w,
                            position: Some(pos),
                            severity: Severity::Error,
                            kind: LintKind::LcpSpmAccess,
                        });
                    } else if off as u64 + word > spm_capacity as u64 {
                        diags.push(Diagnostic {
                            worker: w,
                            position: Some(pos),
                            severity: Severity::Error,
                            kind: LintKind::SpmOffsetOutOfRange {
                                offset: off,
                                capacity: spm_capacity,
                            },
                        });
                    }
                }
                Op::TileBarrier => {
                    if is_lcp {
                        diags.push(Diagnostic {
                            worker: w,
                            position: Some(pos),
                            severity: Severity::Error,
                            kind: LintKind::LcpTileBarrier,
                        });
                    } else {
                        barriers.push(op);
                    }
                }
                Op::GlobalBarrier => barriers.push(op),
            }
        }
        *seq_slot = Some(barriers);
    }

    // Tile congruence: within a tile, every stream-bearing PE must have
    // an identical barrier projection — this is exactly the condition
    // under which the machine's per-tile barrier counting terminates
    // (see `verify_props` for the property test of this equivalence).
    for tile in 0..geom.tiles() {
        let mut reference: Option<(usize, &[Op])> = None;
        for pe in 0..geom.pes_per_tile() {
            let w = geom.pe_id(tile, pe);
            let Some(seq) = barrier_seqs[w].as_deref() else {
                continue;
            };
            match reference {
                None => reference = Some((w, seq)),
                Some((rw, rseq)) => {
                    if seq != rseq {
                        let barrier_index = rseq
                            .iter()
                            .zip(seq.iter())
                            .position(|(a, b)| a != b)
                            .unwrap_or_else(|| rseq.len().min(seq.len()));
                        diags.push(Diagnostic {
                            worker: w,
                            position: None,
                            severity: Severity::Error,
                            kind: LintKind::BarrierMismatch {
                                tile,
                                reference: rw,
                                barrier_index,
                            },
                        });
                    }
                }
            }
        }
    }

    // Global congruence: every stream-bearing worker must pass the same
    // number of global barriers.
    let mut reference: Option<(usize, usize)> = None;
    for (w, seq) in barrier_seqs.iter().enumerate() {
        let Some(seq) = seq.as_deref() else { continue };
        let globals = seq.iter().filter(|&&op| op == Op::GlobalBarrier).count();
        match reference {
            None => reference = Some((w, globals)),
            Some((rw, expected)) => {
                if globals != expected {
                    diags.push(Diagnostic {
                        worker: w,
                        position: None,
                        severity: Severity::Error,
                        kind: LintKind::GlobalBarrierMismatch {
                            reference: rw,
                            expected,
                            found: globals,
                        },
                    });
                }
            }
        }
    }

    diags
}

/// True if `diags` contains no [`Severity::Error`] finding.
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity < Severity::Error)
}

/// The flavour of a detected race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two stores to the same word.
    StoreStore,
    /// A load and a store of the same word.
    LoadStore,
}

/// Where a racy word lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceSite {
    /// A word in the global address space (byte address of the word).
    Global(Addr),
    /// A word in a tile's shared scratchpad (SCS mode).
    SharedSpm {
        /// The tile whose SPM is involved.
        tile: usize,
        /// Byte offset of the word.
        offset: u32,
    },
}

impl fmt::Display for RaceSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceSite::Global(a) => write!(f, "global {a:#x}"),
            RaceSite::SharedSpm { tile, offset } => {
                write!(f, "tile {tile} shared SPM offset {offset}")
            }
        }
    }
}

/// One detected conflict: two accesses to the same word, by different
/// workers, with no barrier between them, at least one a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Store/store or load/store.
    pub kind: RaceKind,
    /// The contested word.
    pub site: RaceSite,
    /// The two unordered workers.
    pub workers: (u32, u32),
    /// Issue cycles of the two accesses (trace order, not a
    /// happens-before order).
    pub cycles: (u64, u64),
    /// The global-barrier epoch both accesses fall in.
    pub epoch: usize,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            RaceKind::StoreStore => "store/store",
            RaceKind::LoadStore => "load/store",
        };
        write!(
            f,
            "{kind} race on {} between workers {} (cycle {}) and {} (cycle {}) in \
             global epoch {}",
            self.site, self.workers.0, self.cycles.0, self.workers.1, self.cycles.1, self.epoch
        )
    }
}

#[derive(Clone, Copy)]
struct Access {
    worker: u32,
    tile: usize,
    is_pe: bool,
    is_store: bool,
    tile_epoch: usize,
    cycle: u64,
}

/// Detects data races in a recorded trace.
///
/// Happens-before is barrier-epoch based: each worker carries a
/// global-barrier counter and a tile-barrier counter, advanced by the
/// barrier events the machine records at arrival. Two accesses to the
/// same word conflict when they come from different workers, at least
/// one is a store, they share the global epoch, and — if both workers
/// are PEs of the same tile — they also share the tile epoch. Private
/// scratchpads (PS) cannot race by construction and are skipped.
///
/// At most one race is reported per (word, global epoch); a truncated
/// trace (see [`crate::TraceCapture::truncated`]) can only cause missed
/// races, never false positives.
pub fn detect_races(
    trace: &[TraceEvent],
    geom: Geometry,
    hw: HwConfig,
    ua: &MicroArch,
) -> Vec<Race> {
    let word = ua.word_bytes as u64;
    let shared_spm = hw.l1() == L1Mode::SharedCacheSpm;
    // (site, global epoch) -> accesses in that epoch.
    let mut sites: HashMap<(RaceSite, usize), Vec<Access>> = HashMap::new();
    let mut global_epoch = vec![0usize; geom.total_workers()];
    let mut tile_epoch = vec![0usize; geom.total_workers()];

    for ev in trace {
        let w = ev.worker as usize;
        let (tile, pe) = geom.locate(w);
        let site = match ev.op {
            Op::GlobalBarrier => {
                global_epoch[w] += 1;
                continue;
            }
            Op::TileBarrier => {
                tile_epoch[w] += 1;
                continue;
            }
            Op::Compute(_) => continue,
            Op::Load(addr) | Op::Store(addr) => RaceSite::Global(addr / word * word),
            Op::SpmLoad(off) | Op::SpmStore(off) => {
                if !shared_spm {
                    // PS: the SPM is private to the PE; Sc/Pc: the run
                    // would have failed before producing this event.
                    continue;
                }
                RaceSite::SharedSpm {
                    tile,
                    offset: off / word as u32 * word as u32,
                }
            }
        };
        let is_store = matches!(ev.op, Op::Store(_) | Op::SpmStore(_));
        sites
            .entry((site, global_epoch[w]))
            .or_default()
            .push(Access {
                worker: ev.worker,
                tile,
                is_pe: pe.is_some(),
                is_store,
                tile_epoch: tile_epoch[w],
                cycle: ev.cycle,
            });
    }

    let mut races = Vec::new();
    for (&(site, epoch), accesses) in &sites {
        if !accesses.iter().any(|a| a.is_store) {
            continue;
        }
        'found: for (i, a) in accesses.iter().enumerate() {
            for b in &accesses[i + 1..] {
                if a.worker == b.worker || !(a.is_store || b.is_store) {
                    continue;
                }
                // PEs of the same tile are additionally ordered by tile
                // barriers; everyone else only by global barriers.
                if a.is_pe && b.is_pe && a.tile == b.tile && a.tile_epoch != b.tile_epoch {
                    continue;
                }
                let kind = if a.is_store && b.is_store {
                    RaceKind::StoreStore
                } else {
                    RaceKind::LoadStore
                };
                races.push(Race {
                    kind,
                    site,
                    workers: (a.worker, b.worker),
                    cycles: (a.cycle, b.cycle),
                    epoch,
                });
                break 'found;
            }
        }
    }
    // Deterministic report order regardless of hash iteration.
    races.sort_by_key(|r| (r.cycles.0, r.cycles.1, r.workers));
    races
}
