//! Static epoch-dependence analysis over compiled [`Program`]s.
//!
//! The Program IR resolves every access's cache line, bank route and
//! SPM offset at build time, which is exactly what a dependence
//! analysis needs: this module abstract-interprets the per-worker
//! [`MicroOp`](crate::program) arrays and computes exact read/write
//! sets at three granularities — HBM cache lines (and the HBM *channel*
//! closure each access can reach through prefetch and writeback),
//! L1/L2 bank routes, and SPM words — then derives:
//!
//! 1. a **commit verdict per epoch** ([`ParCommit`]): epochs whose
//!    tiles are provably disjoint on all shared state are marked
//!    [`ParCommit::Proven`], which lets
//!    [`Machine::run_program`](crate::Machine::run_program) commit them
//!    without the shadow-HBM replay (and extends epoch-parallel
//!    eligibility to shared-L2 configs whose epochs never share a
//!    line); everything else stays [`ParCommit::Check`] and keeps the
//!    bit-exact dynamic replay;
//! 2. **lints** on the same sets: dead stores (overwritten before any
//!    read), dead SPM writes (never read back), cross-epoch
//!    write-write hazards with full provenance (worker, epoch, pc),
//!    and global barriers separating provably independent epochs
//!    (elision candidates, consumed by
//!    [`ProgramBuilder::elide_proven_barriers`](crate::ProgramBuilder::elide_proven_barriers)).
//!
//! The analysis runs *incrementally* inside
//! [`ProgramBuilder`](crate::ProgramBuilder) — the access arena is
//! maintained on append, like the online lints — and [`analyze`] is
//! the post-hoc differential oracle: both paths feed the same
//! [`derive`] kernel, so their verdicts are equal by construction
//! (pinned by the `analyze_props` proptest suite).
//!
//! See DESIGN.md §11 for the set domains and the proof obligations
//! behind each [`ProvenKind`].

use crate::config::{Geometry, HwConfig, L2Mode, MicroArch};
use crate::program::{congruent, MicroKind, MicroOp, Program};
use crate::verify::{Diagnostic, LintKind, Severity};
use std::fmt;

/// Upper bound on retained analyzer diagnostics; the overflow is
/// counted in [`Analysis::suppressed`].
const MAX_DIAGS: usize = 32;

/// How [`Machine::run_program`](crate::Machine::run_program) may commit
/// one epoch of an epoch-parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParCommit {
    /// The epoch is statically proven interference-free: it commits
    /// without the shadow-HBM replay.
    Proven(ProvenKind),
    /// Interference could not be excluded: the epoch keeps the dynamic
    /// shadow-HBM replay (with sequential rollback on mismatch).
    Check,
}

/// The proof obligation a [`ParCommit::Proven`] epoch discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvenKind {
    /// At most one tile issues HBM-reaching accesses in this epoch, so
    /// there is no cross-tile HBM interleaving to validate.
    SingleTile,
    /// Private-L2 config: the whole-program HBM *channel closures* of
    /// the tiles (demand lines plus every prefetch and writeback line
    /// those demands can reach) are pairwise disjoint, so each channel
    /// is owned by one tile and the per-tile shadow HBM states merge
    /// exactly.
    DisjointChannels,
    /// Shared-L2 config: the HBM line sets the tiles touch in this
    /// epoch are pairwise disjoint.
    DisjointLines,
}

impl fmt::Display for ParCommit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParCommit::Proven(ProvenKind::SingleTile) => {
                write!(f, "proven (single mem-active tile)")
            }
            ParCommit::Proven(ProvenKind::DisjointChannels) => {
                write!(f, "proven (disjoint HBM channels)")
            }
            ParCommit::Proven(ProvenKind::DisjointLines) => {
                write!(f, "proven (disjoint HBM lines)")
            }
            ParCommit::Check => write!(f, "check (dynamic replay)"),
        }
    }
}

/// The first interference witness that blocks a [`ParCommit::Proven`]
/// verdict — which epoch pair of tiles interferes, and on what address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Epoch index the interference occurs in.
    pub epoch: u32,
    /// Lower-numbered interfering tile.
    pub tile_a: u32,
    /// Higher-numbered interfering tile.
    pub tile_b: u32,
    /// Witness HBM line.
    pub line: u64,
    /// HBM channel that line maps to.
    pub channel: u32,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {}: tiles {} and {} interfere on HBM line {:#x} (channel {})",
            self.epoch, self.tile_a, self.tile_b, self.line, self.channel
        )
    }
}

/// The analyzer's verdict over one [`Program`], attached next to the
/// lint verdict and consumed by
/// [`Machine::run_program`](crate::Machine::run_program).
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    congruent: bool,
    epochs: Vec<ParCommit>,
    conflict: Option<Conflict>,
    diagnostics: Vec<Diagnostic>,
    suppressed: usize,
    elision_candidates: Vec<u32>,
    conflict_edges: Vec<(u32, u32)>,
    tile_channel_masks: Vec<u64>,
}

impl Analysis {
    /// An empty verdict for a program the analysis does not apply to
    /// (incongruent, poisoned, unsupported config, or no streams).
    fn inapplicable(congruent: bool) -> Self {
        Analysis {
            congruent,
            epochs: Vec::new(),
            conflict: None,
            diagnostics: Vec::new(),
            suppressed: 0,
            elision_candidates: Vec::new(),
            conflict_edges: Vec::new(),
            tile_channel_masks: Vec::new(),
        }
    }

    /// True when the program was epoch-congruent (and unpoisoned) so
    /// the per-epoch verdicts below are meaningful.
    pub fn congruent(&self) -> bool {
        self.congruent
    }

    /// Commit verdict per epoch, in epoch order; empty when the
    /// analysis is inapplicable (see [`Analysis::congruent`]).
    pub fn epochs(&self) -> &[ParCommit] {
        &self.epochs
    }

    /// True when every epoch is [`ParCommit::Proven`] — the condition
    /// under which shared-L2 configs become epoch-parallel eligible.
    pub fn all_proven(&self) -> bool {
        self.congruent
            && !self.epochs.is_empty()
            && self
                .epochs
                .iter()
                .all(|e| matches!(e, ParCommit::Proven(_)))
    }

    /// The first interference witness that forced a [`ParCommit::Check`]
    /// epoch, if any epoch has one.
    pub fn conflict(&self) -> Option<&Conflict> {
        self.conflict.as_ref()
    }

    /// Analyzer lints (dead stores, dead SPM writes, cross-epoch
    /// hazards, redundant barriers), all [`Severity::Warning`], sorted
    /// like [`crate::verify::lint`] reports (worker ascending, then
    /// position). Capped at 32; see [`Analysis::suppressed`].
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Diagnostics dropped by the 32-entry cap.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Global-barrier ordinals (0-based) that separate provably
    /// independent epochs — safe elision candidates for
    /// [`ProgramBuilder::elide_proven_barriers`](crate::ProgramBuilder::elide_proven_barriers).
    pub fn elision_candidates(&self) -> &[u32] {
        &self.elision_candidates
    }

    /// Epoch pairs `(e, f)` with a proven cross-worker dependence (a
    /// store in one and an access to the same location in the other,
    /// by different workers); the complement of these edges is what
    /// justifies barrier elision.
    pub fn conflict_edges(&self) -> &[(u32, u32)] {
        &self.conflict_edges
    }

    /// Per-tile HBM channel-closure masks (bit `c` = channel `c`
    /// reachable), used by the machine to validate a
    /// [`ProvenKind::DisjointChannels`] commit dynamically against
    /// stale pre-program writebacks. Empty under shared L2 or when the
    /// channel count exceeds 64.
    pub(crate) fn tile_channel_masks(&self) -> &[u64] {
        &self.tile_channel_masks
    }
}

/// SPM-shared key tag (see [`Acc::key`]).
const TAG_SPM_SHARED: u64 = 1 << 62;
/// SPM-private key tag (see [`Acc::key`]).
const TAG_SPM_PRIV: u64 = 2 << 62;

/// Route class of one access, as far as the dependence analysis cares:
/// which HBM channel closure it generates and whether its key is a
/// line, a word or an SPM slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccClass {
    /// Private L1 cache in front of a private L2 (`Pc` PE route): the
    /// L1 prefetcher requests non-adjacent lines, widening the closure.
    HbmPc,
    /// Direct PE route into a single-bank private L2 (`Ps` PE route).
    HbmPe1,
    /// LCP route into the `B`-bank private L2.
    HbmLcp,
    /// Any shared-L2 route (PE or LCP); analysis is line-granular.
    HbmShared,
    /// Scratchpad access; never reaches HBM.
    Spm,
}

/// One recorded access: the dependence key plus everything `derive`
/// needs to reason about it. Pushed on append by [`ProgramBuilder`]
/// and reconstructed from micro-ops by [`analyze`]; both must agree,
/// which [`acc_of`] guarantees by being the single constructor.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Acc {
    /// Dependence key: HBM word index under a private L2, HBM line
    /// under a shared L2, or a tagged SPM slot (`TAG_SPM_*`).
    key: u64,
    /// HBM line (meaningless for SPM accesses).
    line: u64,
    worker: u32,
    epoch: u32,
    pc: u32,
    /// Issuing PE within its tile (from the micro-op's bank route).
    pe: u16,
    tile: u16,
    class: AccClass,
    is_store: bool,
}

/// Builds the [`Acc`] record for one lowered micro-op, or `None` for
/// kinds that touch no analyzable state (compute, barriers, poison).
pub(crate) fn acc_of(op: &MicroOp, worker: u32, tile: u16, epoch: u32, pc: u32) -> Option<Acc> {
    use MicroKind::*;
    let (class, is_store, key) = match op.kind {
        SharedLoad | SharedDirLoad => (AccClass::HbmShared, false, op.b),
        SharedStore | SharedDirStore => (AccClass::HbmShared, true, op.b),
        PrivLoad => (AccClass::HbmPc, false, op.a),
        PrivStore => (AccClass::HbmPc, true, op.a),
        DirPeLoad => (AccClass::HbmPe1, false, op.a),
        DirPeStore => (AccClass::HbmPe1, true, op.a),
        DirLcpLoad => (AccClass::HbmLcp, false, op.a),
        DirLcpStore => (AccClass::HbmLcp, true, op.a),
        SpmShared => (
            AccClass::Spm,
            op.a != 0,
            TAG_SPM_SHARED | ((tile as u64) << 32) | op.b,
        ),
        SpmPrivate => (
            AccClass::Spm,
            op.a != 0,
            TAG_SPM_PRIV | ((worker as u64) << 32) | op.b,
        ),
        Compute | TileBarrier | GlobalBarrier | PoisonSpm | PoisonLcpSpm | PoisonLcpBar => {
            return None
        }
    };
    Some(Acc {
        key,
        line: op.b,
        worker,
        epoch,
        pc,
        pe: op.bank,
        tile,
        class,
        is_store,
    })
}

/// The HBM channel-closure mask of one private-L2 access: every channel
/// the memory system can touch serving it — the demand line, the L2
/// prefetch line (`line + nbanks` for that route), and for the `Pc` L1
/// route the non-adjacent L1-prefetch fill `(line+1)·B + pe` with its
/// own L2 prefetch, plus the L1 victim-writeback image `line·B + pe`.
/// Writeback victims of in-program lines stay inside the closure by
/// induction (every line that can enter a tile's banks is in it).
fn channel_mask(acc: &Acc, nch: u64, b: u64) -> u64 {
    let ch = |line: u64| 1u64 << (line % nch);
    let l = acc.line;
    match acc.class {
        AccClass::HbmPc => {
            let pe = acc.pe as u64;
            ch(l)
                | ch(l.wrapping_add(1))
                | ch(l.wrapping_mul(b).wrapping_add(pe))
                | ch(l.wrapping_add(1).wrapping_mul(b).wrapping_add(pe))
                | ch(l.wrapping_add(1).wrapping_mul(b).wrapping_add(pe + 1))
        }
        AccClass::HbmPe1 => ch(l) | ch(l.wrapping_add(1)),
        AccClass::HbmLcp => ch(l) | ch(l.wrapping_add(b)),
        AccClass::HbmShared | AccClass::Spm => 0,
    }
}

/// Everything `derive` needs besides the arena.
pub(crate) struct Ctx {
    pub geom: Geometry,
    pub hw: HwConfig,
    pub nch: u64,
    pub word_bytes: u64,
    pub line_bytes: u64,
    /// Congruent, unpoisoned and on a realisable config; when false the
    /// analysis is inapplicable.
    pub applicable: bool,
    /// Global-barrier count + 1 over the stream-bearing workers; 0 when
    /// no worker has a stream.
    pub n_epochs: u32,
    /// Lowest stream-bearing worker id (barrier lints anchor there).
    pub first_worker: u32,
}

/// Per-(key, epoch) access summary, accumulated while walking one key
/// group of the sorted arena.
#[derive(Clone, Copy)]
struct EpochSum {
    epoch: u32,
    w_min: u32,
    w_max: u32,
    t_min: u16,
    t_max: u16,
    has_load: bool,
    /// Store-issuing worker range; `s_min == u32::MAX` means no store.
    s_min: u32,
    s_max: u32,
    /// First store in (worker, pc) order.
    rep: (u32, u32),
    /// First store by a worker other than `rep.0` (`u32::MAX` = none).
    rep_other: (u32, u32),
}

impl EpochSum {
    fn new(epoch: u32) -> Self {
        EpochSum {
            epoch,
            w_min: u32::MAX,
            w_max: 0,
            t_min: u16::MAX,
            t_max: 0,
            has_load: false,
            s_min: u32::MAX,
            s_max: 0,
            rep: (u32::MAX, 0),
            rep_other: (u32::MAX, 0),
        }
    }

    fn add(&mut self, a: &Acc) {
        self.w_min = self.w_min.min(a.worker);
        self.w_max = self.w_max.max(a.worker);
        self.t_min = self.t_min.min(a.tile);
        self.t_max = self.t_max.max(a.tile);
        if a.is_store {
            self.s_min = self.s_min.min(a.worker);
            self.s_max = self.s_max.max(a.worker);
            if self.rep.0 == u32::MAX {
                self.rep = (a.worker, a.pc);
            } else if a.worker != self.rep.0 && self.rep_other.0 == u32::MAX {
                self.rep_other = (a.worker, a.pc);
            }
        } else {
            self.has_load = true;
        }
    }

    fn has_store(&self) -> bool {
        self.s_min != u32::MAX
    }
}

/// True when a store set with worker range `[s_min, s_max]` and an
/// access set with worker range `[w_min, w_max]` (both non-empty) form
/// a *cross-worker* dependence — i.e. they are not all issued by one
/// and the same worker.
fn cross_worker(s_min: u32, s_max: u32, w_min: u32, w_max: u32) -> bool {
    !(s_min == s_max && w_min == w_max && s_min == w_min)
}

/// The shared analysis kernel: sorts the access arena and derives the
/// per-epoch commit verdicts, the interference witness, the lints and
/// the barrier-elision set. Both the incremental builder path and the
/// post-hoc [`analyze`] oracle end here, so they agree by construction.
pub(crate) fn derive(ctx: &Ctx, arena: &mut [Acc]) -> Analysis {
    if !ctx.applicable || ctx.n_epochs == 0 {
        return Analysis::inapplicable(ctx.applicable && ctx.n_epochs > 0);
    }
    let n_epochs = ctx.n_epochs as usize;
    let tiles = ctx.geom.tiles();
    let private_l2 = ctx.hw.l2() == L2Mode::PrivateCache;
    let b = ctx.geom.pes_per_tile() as u64;
    let masks_representable = ctx.nch <= 64 && tiles <= 64;

    // Canonical order: (key, worker, pc) groups every location's
    // accesses together with each worker's program order contiguous.
    arena.sort_unstable_by_key(|a| (a.key, a.worker, a.pc));

    // Pass 1 (order-independent): per-epoch HBM-active tile bits and,
    // under a private L2, the whole-program per-tile channel closures.
    let mut active = vec![0u64; n_epochs];
    let mut masks = vec![
        0u64;
        if private_l2 && masks_representable {
            tiles
        } else {
            0
        }
    ];
    for a in arena.iter() {
        if a.class == AccClass::Spm {
            continue;
        }
        active[a.epoch as usize] |= 1u64 << (a.tile as u64 % 64);
        if !masks.is_empty() {
            masks[a.tile as usize] |= channel_mask(a, ctx.nch, b);
        }
    }
    let masks_disjoint = !masks.is_empty() && {
        let mut seen = 0u64;
        masks.iter().all(|&m| {
            let ok = seen & m == 0;
            seen |= m;
            ok
        })
    };

    // Pass 2: walk key groups. Derives the per-epoch shared-line
    // disjointness (shared L2), the dead-store / dead-SPM-write and
    // cross-epoch hazard lints, and the epoch-pair dependence edges.
    let mut lines_ok = vec![true; n_epochs];
    let mut line_witness: Vec<Option<Conflict>> = vec![None; n_epochs];
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut edges: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let mut sums: Vec<EpochSum> = Vec::new();
    // (worker, pc, first epoch, last epoch, trailing) dead candidates.
    let mut dead: Vec<(u32, u32, u32, u32, bool)> = Vec::new();

    let mut i = 0;
    while i < arena.len() {
        let j = i + arena[i..]
            .iter()
            .position(|a| a.key != arena[i].key)
            .unwrap_or(arena.len() - i);
        let group = &arena[i..j];
        let key = group[0].key;
        let is_spm = key & (TAG_SPM_SHARED | TAG_SPM_PRIV) != 0;
        let multi_worker = group[0].worker != group[j - i - 1].worker;

        // Per-epoch summaries.
        sums.clear();
        for a in group {
            match sums.iter_mut().find(|s| s.epoch == a.epoch) {
                Some(s) => s.add(a),
                None => {
                    let mut s = EpochSum::new(a.epoch);
                    s.add(a);
                    sums.push(s);
                }
            }
        }
        sums.sort_unstable_by_key(|s| s.epoch);

        // Shared-L2 line disjointness: distinct tiles on one line in
        // one epoch deny `DisjointLines` for that epoch.
        if !private_l2 && !is_spm {
            for s in &sums {
                if s.t_min != s.t_max {
                    let e = s.epoch as usize;
                    lines_ok[e] = false;
                    if line_witness[e].is_none() {
                        line_witness[e] = Some(Conflict {
                            epoch: s.epoch,
                            tile_a: s.t_min as u32,
                            tile_b: s.t_max as u32,
                            line: key,
                            channel: (key % ctx.nch) as u32,
                        });
                    }
                }
            }
        }

        // Dead stores: per worker, a store whose next same-worker
        // access is another store is dead unless some *other* worker
        // touches the key in the covered epoch window. HBM stores
        // reaching the end of the program are live (outputs); SPM
        // slots are scratch, so trailing SPM stores are dead too.
        // Under a shared L2 HBM keys are whole lines, where overwrite
        // at line granularity proves nothing — skip HBM dead stores.
        if is_spm || private_l2 {
            dead.clear();
            let mut k = 0;
            while k < group.len() {
                let cur = &group[k];
                let next_same = group.get(k + 1).filter(|n| n.worker == cur.worker);
                if cur.is_store {
                    match next_same {
                        Some(n) if n.is_store => {
                            dead.push((cur.worker, cur.pc, cur.epoch, n.epoch, false));
                        }
                        None if is_spm => {
                            dead.push((cur.worker, cur.pc, cur.epoch, cur.epoch, true));
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            for &(w, pc, e1, e2, trailing) in &dead {
                let alive = multi_worker
                    && sums.iter().any(|s| {
                        let in_window = if trailing {
                            s.epoch >= e1
                        } else {
                            s.epoch >= e1 && s.epoch <= e2
                        };
                        in_window && (s.w_min < w || s.w_max > w)
                    });
                if !alive {
                    let kind = if is_spm {
                        LintKind::DeadSpmWrite {
                            offset: ((key & 0xFFFF_FFFF) * ctx.word_bytes) as u32,
                        }
                    } else {
                        LintKind::DeadStore {
                            addr: key * ctx.word_bytes,
                        }
                    };
                    diags.push(Diagnostic {
                        worker: w as usize,
                        position: Some(pc as usize),
                        severity: Severity::Warning,
                        kind,
                    });
                }
            }
        }

        if multi_worker {
            // Cross-epoch write-write hazards: a store overwritten in a
            // later epoch by a different worker, with no read of the
            // location in or between the two epochs. First hazard per
            // key only.
            let mut last_store: Option<(u32, u32, u32)> = None;
            let mut reported = false;
            for s in &sums {
                if let Some((e, w, pc)) = last_store {
                    if !reported
                        && !s.has_load
                        && s.has_store()
                        && (s.s_min != s.s_max || s.s_min != w)
                    {
                        let second = if s.rep.0 != w { s.rep } else { s.rep_other };
                        let addr = if is_spm {
                            (key & 0xFFFF_FFFF) * ctx.word_bytes
                        } else if private_l2 {
                            key * ctx.word_bytes
                        } else {
                            key * ctx.line_bytes
                        };
                        diags.push(Diagnostic {
                            worker: w as usize,
                            position: Some(pc as usize),
                            severity: Severity::Warning,
                            kind: LintKind::CrossEpochWriteHazard {
                                addr,
                                first: (w as usize, e as usize, pc as usize),
                                second: (second.0 as usize, s.epoch as usize, second.1 as usize),
                            },
                        });
                        reported = true;
                    }
                }
                if s.has_store() {
                    last_store = Some((s.epoch, s.rep.0, s.rep.1));
                } else if s.has_load {
                    last_store = None;
                }
            }

            // Epoch-pair dependence edges: barrier (e, f) separation is
            // load-bearing iff a store on one side and an access on the
            // other are issued by different workers.
            for x in 0..sums.len() {
                for y in x + 1..sums.len() {
                    let (a, c) = (&sums[x], &sums[y]);
                    let unsafe_pair = (a.has_store()
                        && cross_worker(a.s_min, a.s_max, c.w_min, c.w_max))
                        || (c.has_store() && cross_worker(c.s_min, c.s_max, a.w_min, a.w_max));
                    if unsafe_pair {
                        edges.insert((a.epoch, c.epoch));
                    }
                }
            }
        }

        i = j;
    }

    // Per-epoch commit verdicts and the first blocking witness.
    let mut epochs = Vec::with_capacity(n_epochs);
    let mut conflict: Option<Conflict> = None;
    let mut chan_witness: Option<Conflict> = None;
    for e in 0..n_epochs {
        let verdict = if active[e].count_ones() <= 1 {
            ParCommit::Proven(ProvenKind::SingleTile)
        } else if private_l2 && masks_disjoint {
            ParCommit::Proven(ProvenKind::DisjointChannels)
        } else if !private_l2 && lines_ok[e] {
            ParCommit::Proven(ProvenKind::DisjointLines)
        } else {
            ParCommit::Check
        };
        if verdict == ParCommit::Check && conflict.is_none() {
            conflict = if private_l2 {
                if chan_witness.is_none() {
                    chan_witness = channel_conflict(&masks, arena, ctx.nch, b);
                }
                chan_witness.map(|mut c| {
                    c.epoch = e as u32;
                    c
                })
            } else {
                line_witness[e]
            };
        }
        epochs.push(verdict);
    }

    // Barrier ordinal g orders epoch g before g+1; with no dependence
    // edge between exactly that pair, the barrier is redundant.
    let mut elision_candidates = Vec::new();
    for g in 0..n_epochs.saturating_sub(1) as u32 {
        if !edges.contains(&(g, g + 1)) {
            elision_candidates.push(g);
            diags.push(Diagnostic {
                worker: ctx.first_worker as usize,
                position: None,
                severity: Severity::Warning,
                kind: LintKind::RedundantBarrier {
                    barrier_index: g as usize,
                },
            });
        }
    }

    diags.sort_by_key(|d| (d.worker, d.position.unwrap_or(usize::MAX)));
    let suppressed = diags.len().saturating_sub(MAX_DIAGS);
    diags.truncate(MAX_DIAGS);

    Analysis {
        congruent: true,
        epochs,
        conflict,
        diagnostics: diags,
        suppressed,
        elision_candidates,
        conflict_edges: edges.into_iter().collect(),
        tile_channel_masks: masks,
    }
}

/// Deterministic witness for overlapping private-L2 channel closures:
/// the lowest shared channel, its two lowest tiles, and the first
/// arena access (in canonical order) of the higher tile whose closure
/// reaches that channel.
fn channel_conflict(masks: &[u64], arena: &[Acc], nch: u64, b: u64) -> Option<Conflict> {
    let mut seen = 0u64;
    let mut overlap = 0u64;
    for m in masks {
        overlap |= seen & m;
        seen |= m;
    }
    let c = overlap.trailing_zeros();
    if c == 64 {
        return None;
    }
    let bit = 1u64 << c;
    let mut it = masks.iter().enumerate().filter(|(_, m)| *m & bit != 0);
    let tile_a = it.next()?.0 as u32;
    let tile_b = it.next()?.0 as u32;
    let witness = arena
        .iter()
        .find(|a| a.tile as u32 == tile_b && channel_mask(a, nch, b) & bit != 0)?;
    Some(Conflict {
        epoch: 0,
        tile_a,
        tile_b,
        line: witness.line,
        channel: c,
    })
}

/// Post-hoc entry point: reconstructs the access arena from a compiled
/// program's micro-ops and derives the same [`Analysis`] the
/// incremental [`ProgramBuilder`](crate::ProgramBuilder) path attaches.
/// This is the differential oracle the `analyze_props` suite compares
/// against.
pub fn analyze(prog: &Program) -> Analysis {
    let geom = prog.geometry();
    let hw = prog.hw();
    let ua: &MicroArch = prog.uarch();
    let unsupported = hw == HwConfig::Scs && geom.pes_per_tile() < 2;

    let mut poisoned = false;
    let mut arena: Vec<Acc> = Vec::new();
    let mut segments: Vec<(usize, Vec<u32>)> = Vec::new();
    let mut first_worker = u32::MAX;
    let ops = prog.micro_ops();
    for (w, range) in prog.worker_ranges().iter().enumerate() {
        let Some((lo, hi)) = range else { continue };
        first_worker = first_worker.min(w as u32);
        let (tile, _) = geom.locate(w);
        let mut segs: Vec<u32> = vec![0];
        let mut epoch = 0u32;
        for (pc, op) in ops[*lo as usize..*hi as usize].iter().enumerate() {
            match op.kind {
                MicroKind::TileBarrier => *segs.last_mut().expect("segment vector non-empty") += 1,
                MicroKind::GlobalBarrier => {
                    segs.push(0);
                    epoch += 1;
                }
                MicroKind::PoisonSpm | MicroKind::PoisonLcpSpm | MicroKind::PoisonLcpBar => {
                    poisoned = true
                }
                _ => {
                    if let Some(acc) = acc_of(op, w as u32, tile as u16, epoch, pc as u32) {
                        arena.push(acc);
                    }
                }
            }
        }
        segments.push((w, segs));
    }
    let congr = congruent(geom, segments.iter().map(|(w, s)| (*w, s.as_slice())));
    let n_epochs = segments.first().map(|(_, s)| s.len() as u32).unwrap_or(0);
    let ctx = Ctx {
        geom,
        hw,
        nch: ua.hbm_channels as u64,
        word_bytes: ua.word_bytes as u64,
        line_bytes: ua.line_bytes as u64,
        applicable: congr && !poisoned && !unsupported,
        n_epochs,
        first_worker: if first_worker == u32::MAX {
            0
        } else {
            first_worker
        },
    };
    derive(&ctx, &mut arena)
}
