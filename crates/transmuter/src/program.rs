//! Compiled program IR: the single artifact that crosses the
//! kernel → verifier → machine boundary.
//!
//! Kernels lower their per-worker [`Op`] streams into a [`Program`]
//! once; the machine then executes the pre-decoded micro-ops directly
//! ([`crate::Machine::run_program`]), without per-step enum matching or
//! boxed-iterator dispatch, and the verifier's verdict can be attached
//! to the artifact so a cached program is linted exactly once
//! ([`Program::attach_lint`]).
//!
//! Lowering resolves everything that is invariant for a given
//! `(Geometry, HwConfig, MicroArch)` at build time: line numbers, L1
//! bank routing, SPM bank selection, compute-cost clamping, and the
//! *poisoning* of ops that the event loop would reject at run time
//! (SPM ops without SPM, LCP tile barriers) — executing a poisoned op
//! reproduces [`crate::Machine::run`]'s exact error or panic at the
//! exact same point in the schedule.
//!
//! Lowering also segments the program by its global barriers and
//! decides whether the *epoch-parallel* execution core may run it:
//! under a private L2 ([`L2Mode::PrivateCache`]) tiles share no bank
//! and no arbitrated port, so between two global barriers each tile
//! can execute on its own host thread against a shadow HBM, with the
//! real HBM replayed and validated afterwards (DESIGN.md §9).

use crate::analyze::{self, Analysis};
use crate::cache::CacheBank;
use crate::config::{Geometry, HwConfig, L1Mode, L2Mode, MicroArch};
use crate::hbm::{Hbm, HbmSink};
use crate::machine::{release, BarrierState, Sched, SimError};
use crate::memsys::{
    priv_direct_access, priv_l1_access, FastDiv, MemorySystem, PrivParams, PrivTile,
};
use crate::op::{Addr, Op};
use crate::stats::SimStats;
use crate::verify::{self, Diagnostic, LintKind, Severity};
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of [`Program::id`] values; 0 is reserved (never issued).
static NEXT_PROGRAM_ID: AtomicU64 = AtomicU64::new(1);

/// Pre-decoded operation kind. The hardware-dependent routing decision
/// (shared vs private, PE vs LCP) is taken at compile time, so the
/// interpreter dispatches on a flat enum with no per-op mode checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MicroKind {
    /// Busy the core for `a` cycles (already clamped to ≥ 1).
    Compute,
    /// Shared-L1 load/store (SC/SCS PE): `bank` = L1 bank,
    /// `a` = bank-local line, `b` = global line.
    SharedLoad,
    SharedStore,
    /// Direct shared-L2 load/store (LCP under a shared L2): `b` = line.
    SharedDirLoad,
    SharedDirStore,
    /// Private-L1 load/store (PC PE): `bank` = PE, `b` = line.
    PrivLoad,
    PrivStore,
    /// Direct private-L2 load/store (PS PE): `bank` = PE, `b` = line.
    DirPeLoad,
    DirPeStore,
    /// Direct private-L2 load/store (LCP under a private L2): `b` = line.
    DirLcpLoad,
    DirLcpStore,
    /// Shared-SPM access (SCS): `bank` = SPM bank. Loads and stores
    /// time identically, so one kind covers both.
    SpmShared,
    /// Private-SPM access (PS): fixed bank latency.
    SpmPrivate,
    /// PE tile barrier.
    TileBarrier,
    /// Global barrier (epoch boundary).
    GlobalBarrier,
    /// SPM op compiled against a configuration without SPM: executing
    /// it yields [`SimError::SpmUnavailable`].
    PoisonSpm,
    /// SPM op issued by an LCP (configuration has SPM): executing it
    /// panics, as the memory system's own assertion would.
    PoisonLcpSpm,
    /// Tile barrier issued by an LCP: executing it yields
    /// [`SimError::LcpBarrier`].
    PoisonLcpBar,
}

/// One pre-decoded micro-op (24 bytes; the interpreter walks dense
/// arrays of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MicroOp {
    /// Compute cycles, or the bank-local line for shared-L1 accesses.
    pub(crate) a: u64,
    /// Global line number for memory accesses.
    pub(crate) b: u64,
    pub(crate) kind: MicroKind,
    /// Resolved bank / PE index, where the kind needs one.
    pub(crate) bank: u16,
}

impl MicroOp {
    #[inline]
    fn plain(kind: MicroKind) -> Self {
        MicroOp {
            a: 0,
            b: 0,
            kind,
            bank: 0,
        }
    }
}

/// Verifier verdict attached to a compiled program.
#[derive(Debug, Clone)]
struct LintStatus {
    clean: bool,
    diagnostics: Vec<Diagnostic>,
}

/// A compiled, immutable execution artifact: every worker's op stream
/// lowered to pre-decoded micro-ops for one specific
/// `(Geometry, HwConfig, MicroArch)`.
///
/// A `Program` is the unit of **caching** (kernels compile once and
/// re-run many times), **linting** ([`Program::attach_lint`] pins the
/// verifier's verdict to the artifact) and **execution**
/// ([`crate::Machine::run_program`]).
#[derive(Debug, Clone)]
pub struct Program {
    /// Process-unique identity of this compiled artifact, refreshed on
    /// every [`Program::recompile`]: two runs observing the same id are
    /// guaranteed to have executed the same micro-op streams, which is
    /// what keys the machine's steady-state memo. Clones share the id
    /// (a clone is the same immutable artifact).
    id: u64,
    geom: Geometry,
    hw: HwConfig,
    ua: MicroArch,
    /// All workers' micro-ops, concatenated.
    ops: Vec<MicroOp>,
    /// Per-worker `(start, end)` range into `ops`; `None` = no stream.
    ranges: Vec<Option<(u32, u32)>>,
    /// True when the program is *epoch-congruent*: no poisoned ops,
    /// every stream-bearing worker has the same global-barrier count,
    /// and within each tile every PE stream has the same tile-barrier
    /// count per global-barrier segment. Congruent programs under a
    /// private L2 are eligible for epoch-parallel execution.
    parallel_ok: bool,
    lint: Option<LintStatus>,
    /// The static epoch-dependence verdict (see [`crate::analyze`]),
    /// attached next to the lint verdict: by [`ProgramBuilder::finish`]
    /// from its incrementally maintained sets, and by
    /// [`Program::recompile`] via the post-hoc oracle.
    analysis: Option<Analysis>,
}

impl Program {
    /// Compiles per-worker op streams (pairs of global worker id and op
    /// slice) into a program for the given machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if a worker id is out of range for `geom`, or a worker is
    /// given two streams.
    pub fn compile<'a, I>(geom: Geometry, hw: HwConfig, ua: &MicroArch, streams: I) -> Self
    where
        I: IntoIterator<Item = (usize, &'a [Op])>,
    {
        let mut p = Program {
            id: 0,
            geom,
            hw,
            ua: ua.clone(),
            ops: Vec::new(),
            ranges: Vec::new(),
            parallel_ok: false,
            lint: None,
            analysis: None,
        };
        p.recompile(geom, hw, ua, streams);
        p
    }

    /// Re-lowers new streams into this program's buffers, avoiding
    /// reallocation when a kernel compiles fresh ops every invocation
    /// (masked / frontier-dependent streams). Any attached lint verdict
    /// is discarded.
    ///
    /// # Panics
    ///
    /// Panics if a worker id is out of range for `geom`, or a worker is
    /// given two streams.
    pub fn recompile<'a, I>(&mut self, geom: Geometry, hw: HwConfig, ua: &MicroArch, streams: I)
    where
        I: IntoIterator<Item = (usize, &'a [Op])>,
    {
        self.id = NEXT_PROGRAM_ID.fetch_add(1, Ordering::Relaxed);
        self.geom = geom;
        self.hw = hw;
        if self.ua != *ua {
            self.ua = ua.clone();
        }
        self.ops.clear();
        self.ranges.clear();
        self.ranges.resize(geom.total_workers(), None);
        self.lint = None;
        self.analysis = None;

        let ctx = LowerCtx::new(geom, hw, ua);

        let mut poisoned = false;
        // Per stream-bearing worker: tile-barrier count in each
        // global-barrier segment (last entry = tail segment), used for
        // the congruence check below. The global-barrier count is the
        // vector length minus one.
        let mut segments: Vec<(usize, Vec<u32>)> = Vec::new();

        for (worker, ops) in streams {
            assert!(worker < geom.total_workers(), "worker id out of range");
            assert!(self.ranges[worker].is_none(), "worker given two streams");
            let (_, pe) = geom.locate(worker);
            let lo = self.ops.len() as u32;
            let mut segs: Vec<u32> = vec![0];
            for &op in ops {
                let m = match op {
                    Op::Compute(n) => MicroOp {
                        a: n.max(1) as u64,
                        b: 0,
                        kind: MicroKind::Compute,
                        bank: 0,
                    },
                    Op::Load(addr) => ctx.mem_access(addr, false, pe),
                    Op::Store(addr) => ctx.mem_access(addr, true, pe),
                    Op::SpmLoad(off) => ctx.spm_access(off, false, pe, &mut poisoned),
                    Op::SpmStore(off) => ctx.spm_access(off, true, pe, &mut poisoned),
                    Op::TileBarrier => {
                        if pe.is_none() {
                            poisoned = true;
                            MicroOp::plain(MicroKind::PoisonLcpBar)
                        } else {
                            *segs.last_mut().expect("segment vector non-empty") += 1;
                            MicroOp::plain(MicroKind::TileBarrier)
                        }
                    }
                    Op::GlobalBarrier => {
                        segs.push(0);
                        MicroOp::plain(MicroKind::GlobalBarrier)
                    }
                };
                self.ops.push(m);
            }
            let hi = self.ops.len() as u32;
            self.ranges[worker] = Some((lo, hi));
            segments.push((worker, segs));
        }

        self.parallel_ok =
            !poisoned && congruent(geom, segments.iter().map(|(w, s)| (*w, s.as_slice())));
        self.analysis = Some(crate::analyze::analyze(self));
    }

    /// Attaches a verifier verdict ([`verify::lint`] diagnostics) to the
    /// program. A program carrying error-severity diagnostics is
    /// rejected by [`crate::Machine::run_program`] with
    /// [`SimError::Rejected`] — the same contract as
    /// [`crate::Machine::run_verified`], but the verdict travels with
    /// the cached artifact instead of being recomputed per run.
    pub fn attach_lint(&mut self, diagnostics: Vec<Diagnostic>) {
        let clean = verify::is_clean(&diagnostics);
        self.lint = Some(LintStatus { clean, diagnostics });
    }

    /// The lint verdict, if one was attached: `Some(true)` = clean.
    pub fn lint_clean(&self) -> Option<bool> {
        self.lint.as_ref().map(|l| l.clean)
    }

    /// The attached lint diagnostics (warnings included), if a verdict
    /// was attached. Used by the differential suites to prove the
    /// streaming builder and the batch `lint` pass agree finding for
    /// finding.
    pub fn lint_diagnostics(&self) -> Option<&[Diagnostic]> {
        self.lint.as_ref().map(|l| l.diagnostics.as_slice())
    }

    /// The static epoch-dependence verdict attached to this program,
    /// if one was computed (see [`crate::analyze`]). [`Program::compile`],
    /// [`Program::recompile`] and [`ProgramBuilder::finish`] all attach
    /// one; a `None` is treated as all-[`crate::analyze::ParCommit::Check`]
    /// by the machine.
    pub fn analysis(&self) -> Option<&Analysis> {
        self.analysis.as_ref()
    }

    /// Diagnostics that reject this program, if the attached lint found
    /// error-severity findings.
    pub(crate) fn rejecting_diagnostics(&self) -> Option<&[Diagnostic]> {
        match &self.lint {
            Some(l) if !l.clean => Some(&l.diagnostics),
            _ => None,
        }
    }

    /// Process-unique identity of the compiled streams (see the field
    /// docs); refreshed by every [`Program::recompile`].
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Geometry the program was compiled for.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Hardware configuration the program was compiled for.
    pub fn hw(&self) -> HwConfig {
        self.hw
    }

    /// Microarchitecture the program was compiled for.
    pub(crate) fn uarch(&self) -> &MicroArch {
        &self.ua
    }

    /// True if the program is epoch-congruent (see the type docs); a
    /// prerequisite for epoch-parallel execution.
    pub fn parallel_ok(&self) -> bool {
        self.parallel_ok
    }

    /// Total micro-ops across all workers.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no worker has any ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub(crate) fn micro_ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Per-worker `(start, end)` ranges into the micro-op array
    /// (`None` = worker has no stream), for [`crate::analyze`]'s
    /// post-hoc reconstruction.
    pub(crate) fn worker_ranges(&self) -> &[Option<(u32, u32)>] {
        &self.ranges
    }

    /// Builds the interpreter lane per stream-bearing worker, in
    /// ascending worker order (the order is load-bearing: the lane
    /// index is the scheduler tie-break key, and ascending worker order
    /// makes it match [`crate::Machine::run`]'s worker-id tie-break).
    pub(crate) fn lanes(&self, start: u64) -> Vec<Lane> {
        self.ranges
            .iter()
            .enumerate()
            .filter_map(|(w, r)| {
                r.map(|(lo, hi)| {
                    let (tile, pe) = self.geom.locate(w);
                    Lane {
                        worker: w as u32,
                        tile: tile as u32,
                        lcp: pe.is_none(),
                        pos: lo,
                        end: hi,
                        cycle: start,
                        state: LaneState::Running,
                    }
                })
            })
            .collect()
    }
}

/// Checks epoch congruence: equal global-barrier counts across all
/// stream-bearing workers, and per tile, identical per-segment
/// tile-barrier counts across its PE streams. Takes the segment vectors
/// as a re-iterable view so both [`Program::recompile`] (owned vectors)
/// and [`ProgramBuilder`] (flat arena) can share it.
pub(crate) fn congruent<'a, I>(geom: Geometry, segments: I) -> bool
where
    I: Iterator<Item = (usize, &'a [u32])> + Clone,
{
    let mut gb: Option<usize> = None;
    for (_, segs) in segments.clone() {
        let count = segs.len() - 1;
        if *gb.get_or_insert(count) != count {
            return false;
        }
    }
    for tile in 0..geom.tiles() {
        let mut proto: Option<&[u32]> = None;
        for (w, segs) in segments.clone() {
            let (t, pe) = geom.locate(w);
            if t != tile || pe.is_none() {
                continue;
            }
            match proto {
                None => proto = Some(segs),
                Some(p) if p == segs => {}
                Some(_) => return false,
            }
        }
    }
    true
}

/// Compile-time lowering context for one `(Geometry, HwConfig,
/// MicroArch)` target: everything the per-op Op→[`MicroOp`] translation
/// depends on, hoisted out of the loop. [`Program::recompile`] (batch)
/// and [`ProgramBuilder`] (streaming) share it, so the two lowering
/// paths cannot drift.
#[derive(Debug, Clone)]
struct LowerCtx {
    line_div: FastDiv,
    word_div: FastDiv,
    l1_div: FastDiv,
    spm_div: FastDiv,
    l1: L1Mode,
    has_spm: bool,
    shared_l2: bool,
}

impl LowerCtx {
    fn new(geom: Geometry, hw: HwConfig, ua: &MicroArch) -> Self {
        let b = geom.pes_per_tile();
        // SCS needs at least one cache bank *and* one SPM bank per tile;
        // on a <2-PE tile there is no legal split. Fall back to an
        // all-cache split so construction still succeeds — the lint
        // rejects such a program as UnsupportedConfig before it can run.
        let l1_banks = if hw == HwConfig::Scs && b < 2 {
            b
        } else {
            ua.l1_cache_banks(b, hw.l1())
        };
        LowerCtx {
            line_div: FastDiv::new(ua.line_bytes as u64),
            word_div: FastDiv::new(ua.word_bytes as u64),
            l1_div: FastDiv::new(l1_banks as u64),
            spm_div: FastDiv::new((b - l1_banks) as u64),
            l1: hw.l1(),
            has_spm: matches!(hw.l1(), L1Mode::SharedCacheSpm | L1Mode::PrivateSpm),
            shared_l2: hw.l2() == L2Mode::SharedCache,
        }
    }

    /// Lowers a `Load`/`Store` of `addr` issued by `pe` (`None` = LCP).
    ///
    /// Kinds whose execution path does not consume `a` (every private
    /// and direct route; see the `ExecCtx` dispatch) carry the *word*
    /// index there instead, so [`crate::analyze`] can reason at word
    /// granularity without a second lowering pass. The shared-L1 kinds
    /// keep the bank-local line in `a` (execution needs it); shared-L2
    /// analysis is line-granular anyway.
    #[inline]
    fn mem_access(&self, addr: Addr, is_store: bool, pe: Option<usize>) -> MicroOp {
        let line = self.line_div.div(addr);
        let word = self.word_div.div(addr);
        match (pe, self.l1) {
            (None, _) => MicroOp {
                a: word,
                b: line,
                kind: match (self.shared_l2, is_store) {
                    (true, false) => MicroKind::SharedDirLoad,
                    (true, true) => MicroKind::SharedDirStore,
                    (false, false) => MicroKind::DirLcpLoad,
                    (false, true) => MicroKind::DirLcpStore,
                },
                bank: 0,
            },
            (Some(_), L1Mode::SharedCache | L1Mode::SharedCacheSpm) => MicroOp {
                a: self.l1_div.div(line),
                b: line,
                kind: if is_store {
                    MicroKind::SharedStore
                } else {
                    MicroKind::SharedLoad
                },
                bank: self.l1_div.rem(line) as u16,
            },
            (Some(pe), L1Mode::PrivateCache) => MicroOp {
                a: word,
                b: line,
                kind: if is_store {
                    MicroKind::PrivStore
                } else {
                    MicroKind::PrivLoad
                },
                bank: pe as u16,
            },
            (Some(pe), L1Mode::PrivateSpm) => MicroOp {
                a: word,
                b: line,
                kind: if is_store {
                    MicroKind::DirPeStore
                } else {
                    MicroKind::DirPeLoad
                },
                bank: pe as u16,
            },
        }
    }

    /// Lowers an `SpmLoad`/`SpmStore` of `off` issued by `pe`
    /// (`None` = LCP); loads and stores time identically, so one kind
    /// covers both, with the direction recorded in `a` and the word
    /// index in `b` for [`crate::analyze`] (execution reads neither).
    /// Sets `poisoned` when the op can never execute.
    #[inline]
    fn spm_access(
        &self,
        off: u32,
        is_store: bool,
        pe: Option<usize>,
        poisoned: &mut bool,
    ) -> MicroOp {
        if !self.has_spm {
            *poisoned = true;
            MicroOp::plain(MicroKind::PoisonSpm)
        } else if pe.is_none() {
            *poisoned = true;
            MicroOp::plain(MicroKind::PoisonLcpSpm)
        } else if self.l1 == L1Mode::SharedCacheSpm {
            let word = self.word_div.div(off as u64);
            MicroOp {
                a: is_store as u64,
                b: word,
                kind: MicroKind::SpmShared,
                bank: self.spm_div.rem(word) as u16,
            }
        } else {
            MicroOp {
                a: is_store as u64,
                b: self.word_div.div(off as u64),
                kind: MicroKind::SpmPrivate,
                bank: 0,
            }
        }
    }
}

/// First index at which the barrier projections of two segment vectors
/// diverge — the `barrier_index` [`verify::lint`] reports for a
/// [`LintKind::BarrierMismatch`]. A segment vector `[s0, s1, ..]`
/// projects to `T^s0 G T^s1 G ...` (no trailing `G`); `lint` zips the
/// two projections and takes the first differing position, falling back
/// to the shorter projection's length.
fn barrier_divergence(r: &[u32], s: &[u32]) -> usize {
    let mut idx = 0usize;
    for i in 0..r.len().min(s.len()) {
        let (a, b) = (r[i], s[i]);
        idx += a.min(b) as usize;
        if a != b {
            return idx;
        }
        if i + 1 < r.len() && i + 1 < s.len() {
            idx += 1; // both projections continue with a G separator
        } else {
            return idx; // one projection ends here; zip is exhausted
        }
    }
    idx
}

/// Streaming, verifying program builder: the single-pass fusion of the
/// kernel → `Op` buffer → [`Program::compile`] → [`verify::lint`]
/// pipeline. Kernels open one worker stream at a time
/// ([`ProgramBuilder::begin_pe`] / [`ProgramBuilder::begin_lcp`]) and
/// append ops through the emission verbs; each op is lowered to a
/// [`MicroOp`] on append — cache lines, bank routing, SPM offsets and
/// compute-cost clamping resolved exactly as [`Program::recompile`]
/// would — while barrier-epoch congruence and the [`verify::lint`]
/// checks run online. [`ProgramBuilder::finish`] therefore yields a
/// [`Program`] with the lint verdict already attached, without ever
/// materializing an [`Op`] stream.
///
/// The builder owns its [`Program`] and is reused across invocations:
/// [`ProgramBuilder::begin`] is a `recompile`-style in-place reset, so
/// steady-state emission allocates nothing beyond buffer growth.
///
/// Equivalence with the two-pass path is pinned by unit tests below and
/// by the differential suites in `transmuter/tests` and the `cosparse`
/// crate. One deliberate difference: the builder takes no address-region
/// map, so it never reports [`LintKind::UnmappedAddress`] — its verdict
/// equals [`verify::lint`] called with `regions: None`.
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
    lower: LowerCtx,
    /// Word size in bytes, for the SPM-capacity lint.
    word: u64,
    /// SPM bytes one PE's `spm_load`/`spm_store` offsets may address.
    spm_capacity: usize,
    /// SCS on a <2-PE tile: the config is unrealisable, per-op lints
    /// are meaningless, and [`ProgramBuilder::finish`] attaches only
    /// [`LintKind::UnsupportedConfig`] — exactly as [`verify::lint`]
    /// short-circuits.
    unsupported: bool,
    poisoned: bool,
    /// Tile-barrier counts per global-barrier segment, all workers
    /// concatenated in one arena; the open worker's segments are the
    /// live tail.
    seg_data: Vec<u32>,
    /// Per sealed worker: `(worker, start, end)` into `seg_data`, in
    /// emission order.
    seg_index: Vec<(usize, u32, u32)>,
    /// Per-op lint findings in emission order; sorted into
    /// worker-ascending report order at [`ProgramBuilder::finish`].
    diags: Vec<Diagnostic>,
    /// Access records for [`crate::analyze`], maintained on append (the
    /// incremental half of the analysis; [`ProgramBuilder::finish`]
    /// runs the shared derivation over it).
    arena: Vec<analyze::Acc>,
    /// When false, the arena is not maintained and [`finish`] attaches
    /// no [`Analysis`] — the opt-out for hot one-shot builds
    /// ([`ProgramBuilder::set_analysis`]).
    ///
    /// [`finish`]: ProgramBuilder::finish
    /// [`Analysis`]: crate::Analysis
    analysis_enabled: bool,
    cur_worker: usize,
    cur_pe: Option<usize>,
    cur_tile: u16,
    /// Global barriers emitted so far on the open worker's stream = the
    /// epoch index its next op belongs to.
    cur_epoch: u32,
    cur_lo: u32,
    cur_seg_lo: u32,
    open: bool,
    finished: bool,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        ProgramBuilder::new()
    }
}

impl ProgramBuilder {
    /// Creates an idle builder; call [`ProgramBuilder::begin`] before
    /// emitting.
    pub fn new() -> Self {
        let geom = Geometry::new(1, 1);
        let hw = HwConfig::Sc;
        let ua = MicroArch::paper();
        let lower = LowerCtx::new(geom, hw, &ua);
        let word = ua.word_bytes as u64;
        ProgramBuilder {
            prog: Program {
                id: 0,
                geom,
                hw,
                ua,
                ops: Vec::new(),
                ranges: Vec::new(),
                parallel_ok: false,
                lint: None,
                analysis: None,
            },
            lower,
            word,
            spm_capacity: 0,
            unsupported: false,
            poisoned: false,
            seg_data: Vec::new(),
            seg_index: Vec::new(),
            diags: Vec::new(),
            arena: Vec::new(),
            analysis_enabled: true,
            cur_worker: 0,
            cur_pe: None,
            cur_tile: 0,
            cur_epoch: 0,
            cur_lo: 0,
            cur_seg_lo: 0,
            open: false,
            // A fresh builder holds no emission; require begin() first.
            finished: true,
        }
    }

    /// Resets the builder in place for a new build against
    /// `(geom, hw, ua)`, reusing every internal buffer (the streaming
    /// twin of [`Program::recompile`]). The owned program gets a fresh
    /// identity; any attached lint verdict is discarded.
    pub fn begin(&mut self, geom: Geometry, hw: HwConfig, ua: &MicroArch) {
        self.prog.id = NEXT_PROGRAM_ID.fetch_add(1, Ordering::Relaxed);
        self.prog.geom = geom;
        self.prog.hw = hw;
        if self.prog.ua != *ua {
            self.prog.ua = ua.clone();
        }
        self.prog.ops.clear();
        self.prog.ranges.clear();
        self.prog.ranges.resize(geom.total_workers(), None);
        self.prog.parallel_ok = false;
        self.prog.lint = None;
        self.unsupported = hw == HwConfig::Scs && geom.pes_per_tile() < 2;
        self.lower = LowerCtx::new(geom, hw, ua);
        self.word = ua.word_bytes as u64;
        self.spm_capacity = if self.unsupported {
            0
        } else {
            match hw.l1() {
                L1Mode::SharedCacheSpm => ua.spm_bytes_per_tile(geom.pes_per_tile(), hw.l1()),
                L1Mode::PrivateSpm => ua.spm_bytes_per_pe(hw.l1()),
                _ => 0,
            }
        };
        self.poisoned = false;
        self.seg_data.clear();
        self.seg_index.clear();
        self.diags.clear();
        self.arena.clear();
        self.open = false;
        self.finished = false;
    }

    /// Enables or disables the epoch-dependence analysis
    /// ([`crate::analyze`]) for subsequent builds. On by default.
    ///
    /// Disabled builds skip the incremental access arena and
    /// [`ProgramBuilder::finish`] attaches no verdict: the machine then
    /// keeps the conservative dynamic path (shadow-HBM replay, no
    /// shared-L2 epoch parallelism) for that program. The analysis
    /// sorts every memory access the program makes, which is a real
    /// host-time cost for large programs — callers building one-shot
    /// programs executed exactly once (e.g. per-iteration scratch
    /// builds) gain nothing from the verdict and should opt out. The
    /// setting is sticky across [`ProgramBuilder::begin`].
    pub fn set_analysis(&mut self, enabled: bool) {
        self.analysis_enabled = enabled;
    }

    /// Opens PE `(tile, pe)`'s stream; emission verbs apply to it until
    /// the next `begin_*` or [`ProgramBuilder::finish`]. A worker with a
    /// stream — even an empty one — takes part in barriers and
    /// congruence, exactly like an empty `Op` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range, the worker already has a
    /// stream, or the builder is finished (call
    /// [`ProgramBuilder::begin`] first).
    pub fn begin_pe(&mut self, tile: usize, pe: usize) {
        let worker = self.prog.geom.pe_id(tile, pe);
        self.open_worker(worker, Some(pe));
    }

    /// Opens tile `tile`'s LCP stream (see [`ProgramBuilder::begin_pe`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ProgramBuilder::begin_pe`].
    pub fn begin_lcp(&mut self, tile: usize) {
        let worker = self.prog.geom.lcp_id(tile);
        self.open_worker(worker, None);
    }

    fn open_worker(&mut self, worker: usize, pe: Option<usize>) {
        assert!(
            !self.finished,
            "builder already finished; call begin() to start a new build"
        );
        self.seal();
        assert!(
            worker < self.prog.geom.total_workers(),
            "worker id out of range"
        );
        assert!(
            self.prog.ranges[worker].is_none(),
            "worker given two streams"
        );
        self.cur_worker = worker;
        self.cur_pe = pe;
        self.cur_tile = self.prog.geom.locate(worker).0 as u16;
        self.cur_epoch = 0;
        self.cur_lo = self.prog.ops.len() as u32;
        self.cur_seg_lo = self.seg_data.len() as u32;
        self.seg_data.push(0);
        self.open = true;
    }

    /// Seals the open worker: records its op range and segment vector.
    fn seal(&mut self) {
        if self.open {
            let hi = self.prog.ops.len() as u32;
            self.prog.ranges[self.cur_worker] = Some((self.cur_lo, hi));
            self.seg_index
                .push((self.cur_worker, self.cur_seg_lo, self.seg_data.len() as u32));
            self.open = false;
        }
    }

    /// Capacity hint: reserves room for `additional` more micro-ops.
    #[inline]
    pub fn reserve(&mut self, additional: usize) {
        self.prog.ops.reserve(additional);
    }

    /// Emits a compute burst of `cycles` (clamped to ≥ 1 like the
    /// machine; a zero burst draws the `ZeroCycleCompute` lint warning).
    #[inline]
    pub fn compute(&mut self, cycles: u32) {
        debug_assert!(self.open, "no worker stream open");
        if cycles == 0 && !self.unsupported {
            self.diag_at_cursor(Severity::Warning, LintKind::ZeroCycleCompute);
        }
        self.prog.ops.push(MicroOp {
            a: cycles.max(1) as u64,
            b: 0,
            kind: MicroKind::Compute,
            bank: 0,
        });
    }

    /// Emits a global-memory load of `addr`.
    #[inline]
    pub fn load(&mut self, addr: Addr) {
        debug_assert!(self.open, "no worker stream open");
        let m = self.lower.mem_access(addr, false, self.cur_pe);
        self.record(&m);
        self.prog.ops.push(m);
    }

    /// Emits a global-memory store to `addr`.
    #[inline]
    pub fn store(&mut self, addr: Addr) {
        debug_assert!(self.open, "no worker stream open");
        let m = self.lower.mem_access(addr, true, self.cur_pe);
        self.record(&m);
        self.prog.ops.push(m);
    }

    /// Maintains the dependence-analysis arena on append (the
    /// incremental half of [`crate::analyze`]): records the access the
    /// freshly lowered micro-op performs, tagged with the open worker's
    /// identity, current epoch and op position.
    #[inline]
    fn record(&mut self, m: &MicroOp) {
        if !self.analysis_enabled {
            return;
        }
        let pc = self.prog.ops.len() as u32 - self.cur_lo;
        if let Some(acc) =
            analyze::acc_of(m, self.cur_worker as u32, self.cur_tile, self.cur_epoch, pc)
        {
            self.arena.push(acc);
        }
    }

    /// Emits a scratchpad load of byte offset `offset`.
    #[inline]
    pub fn spm_load(&mut self, offset: u32) {
        self.spm_access(offset, false);
    }

    /// Emits a scratchpad store to byte offset `offset`.
    #[inline]
    pub fn spm_store(&mut self, offset: u32) {
        self.spm_access(offset, true);
    }

    /// SPM loads and stores lower and lint identically (one micro-kind
    /// covers both), hence a single internal verb.
    #[inline]
    fn spm_access(&mut self, offset: u32, is_store: bool) {
        debug_assert!(self.open, "no worker stream open");
        if !self.unsupported {
            if !self.lower.has_spm {
                self.diag_at_cursor(
                    Severity::Error,
                    LintKind::SpmUnavailable {
                        config: self.prog.hw,
                    },
                );
            } else if self.cur_pe.is_none() {
                self.diag_at_cursor(Severity::Error, LintKind::LcpSpmAccess);
            } else if offset as u64 + self.word > self.spm_capacity as u64 {
                self.diag_at_cursor(
                    Severity::Error,
                    LintKind::SpmOffsetOutOfRange {
                        offset,
                        capacity: self.spm_capacity,
                    },
                );
            }
        }
        let m = self
            .lower
            .spm_access(offset, is_store, self.cur_pe, &mut self.poisoned);
        self.record(&m);
        self.prog.ops.push(m);
    }

    /// Emits a tile barrier (poisoned, and an error lint, on an LCP).
    pub fn tile_barrier(&mut self) {
        debug_assert!(self.open, "no worker stream open");
        if self.cur_pe.is_none() {
            if !self.unsupported {
                self.diag_at_cursor(Severity::Error, LintKind::LcpTileBarrier);
            }
            self.poisoned = true;
            self.prog.ops.push(MicroOp::plain(MicroKind::PoisonLcpBar));
        } else {
            *self.seg_data.last_mut().expect("open worker has a segment") += 1;
            self.prog.ops.push(MicroOp::plain(MicroKind::TileBarrier));
        }
    }

    /// Emits a global barrier (epoch boundary).
    pub fn global_barrier(&mut self) {
        debug_assert!(self.open, "no worker stream open");
        self.seg_data.push(0);
        self.cur_epoch += 1;
        self.prog.ops.push(MicroOp::plain(MicroKind::GlobalBarrier));
    }

    #[cold]
    fn diag_at_cursor(&mut self, severity: Severity, kind: LintKind) {
        self.diags.push(Diagnostic {
            worker: self.cur_worker,
            position: Some(self.prog.ops.len() - self.cur_lo as usize),
            severity,
            kind,
        });
    }

    /// Seals the build: resolves epoch congruence, assembles the lint
    /// verdict in [`verify::lint`]'s report order, attaches it, and
    /// returns the finished program (also reachable afterwards via
    /// [`ProgramBuilder::program`]).
    ///
    /// # Panics
    ///
    /// Panics if called twice without an intervening
    /// [`ProgramBuilder::begin`].
    pub fn finish(&mut self) -> &Program {
        assert!(
            !self.finished,
            "finish() called twice; call begin() to start a new build"
        );
        self.seal();
        self.finished = true;
        let seg_data = &self.seg_data;
        let congr = congruent(
            self.prog.geom,
            self.seg_index
                .iter()
                .map(|&(w, lo, hi)| (w, &seg_data[lo as usize..hi as usize])),
        );
        self.prog.parallel_ok = !self.poisoned && congr;

        // Derive the dependence verdict from the incrementally
        // maintained arena — same kernel as the post-hoc oracle
        // `analyze::analyze`, so the two paths agree by construction.
        self.prog.analysis = if self.analysis_enabled {
            let n_epochs = self
                .seg_index
                .first()
                .map(|&(_, lo, hi)| hi - lo)
                .unwrap_or(0);
            let first_worker = self
                .seg_index
                .iter()
                .map(|&(w, _, _)| w as u32)
                .min()
                .unwrap_or(0);
            let actx = analyze::Ctx {
                geom: self.prog.geom,
                hw: self.prog.hw,
                nch: self.prog.ua.hbm_channels as u64,
                word_bytes: self.prog.ua.word_bytes as u64,
                line_bytes: self.prog.ua.line_bytes as u64,
                applicable: !self.poisoned && congr && !self.unsupported,
                n_epochs,
                first_worker,
            };
            Some(analyze::derive(&actx, &mut self.arena))
        } else {
            None
        };

        let mut diags = std::mem::take(&mut self.diags);
        if self.unsupported {
            diags.clear();
            diags.push(Diagnostic {
                worker: 0,
                position: None,
                severity: Severity::Error,
                kind: LintKind::UnsupportedConfig {
                    config: self.prog.hw,
                },
            });
        } else {
            // Per-op findings were pushed in emission order; the batch
            // lint reports workers in ascending id order (positions
            // ascending within a worker, which emission order already
            // guarantees) — a stable sort restores exactly that.
            diags.sort_by_key(|d| d.worker);
            self.push_congruence_diags(&mut diags);
        }
        self.prog.attach_lint(diags);
        &self.prog
    }

    /// Appends the barrier-congruence findings in [`verify::lint`]'s
    /// order: per-tile mismatches (tiles ascending, PEs ascending, the
    /// first stream-bearing PE as reference), then global-barrier
    /// mismatches over every stream-bearing worker in ascending id
    /// order. Segment vectors are compared instead of materialized
    /// barrier projections — the mapping is bijective, so equality and
    /// first-divergence agree with the batch pass.
    fn push_congruence_diags(&self, diags: &mut Vec<Diagnostic>) {
        let geom = self.prog.geom;
        let mut by_worker: Vec<Option<&[u32]>> = vec![None; geom.total_workers()];
        for &(w, lo, hi) in &self.seg_index {
            by_worker[w] = Some(&self.seg_data[lo as usize..hi as usize]);
        }
        for tile in 0..geom.tiles() {
            let mut reference: Option<(usize, &[u32])> = None;
            for pe in 0..geom.pes_per_tile() {
                let w = geom.pe_id(tile, pe);
                let Some(segs) = by_worker[w] else { continue };
                match reference {
                    None => reference = Some((w, segs)),
                    Some((rw, rsegs)) => {
                        if segs != rsegs {
                            diags.push(Diagnostic {
                                worker: w,
                                position: None,
                                severity: Severity::Error,
                                kind: LintKind::BarrierMismatch {
                                    tile,
                                    reference: rw,
                                    barrier_index: barrier_divergence(rsegs, segs),
                                },
                            });
                        }
                    }
                }
            }
        }
        let mut reference: Option<(usize, usize)> = None;
        for (w, segs) in by_worker.iter().enumerate() {
            let Some(segs) = segs else { continue };
            let globals = segs.len() - 1;
            match reference {
                None => reference = Some((w, globals)),
                Some((rw, expected)) => {
                    if globals != expected {
                        diags.push(Diagnostic {
                            worker: w,
                            position: None,
                            severity: Severity::Error,
                            kind: LintKind::GlobalBarrierMismatch {
                                reference: rw,
                                expected,
                                found: globals,
                            },
                        });
                    }
                }
            }
        }
    }

    /// The finished program, borrowed from the builder (clone it to
    /// cache beyond the next [`ProgramBuilder::begin`]).
    ///
    /// # Panics
    ///
    /// Panics if the current build was never finished.
    pub fn program(&self) -> &Program {
        assert!(self.finished, "program() before finish()");
        &self.prog
    }

    /// Opt-in barrier elision: removes every global barrier the
    /// attached [`Analysis`] proved redundant, group-safely — eliding
    /// barriers `g..h` merges epochs into one unordered group, so a
    /// barrier only goes when **no** epoch already merged behind it
    /// depends on the epoch it releases. The elided program is a
    /// distinct artifact (fresh identity, so the machine's steady-state
    /// memo cannot replay the un-elided timing) with its analysis
    /// re-derived and lint positions re-anchored. Returns the number of
    /// barriers removed. Off by default: nothing calls this unless a
    /// kernel explicitly opts in after [`ProgramBuilder::finish`].
    ///
    /// # Panics
    ///
    /// Panics if the current build was never finished.
    pub fn elide_proven_barriers(&mut self) -> usize {
        assert!(self.finished, "elide_proven_barriers() before finish()");
        let Some(analysis) = self.prog.analysis.as_ref() else {
            return 0;
        };
        if !analysis.congruent() || analysis.elision_candidates().is_empty() {
            return 0;
        }
        let n_barriers = analysis.epochs().len().saturating_sub(1);
        let edges: Vec<(u32, u32)> = analysis.conflict_edges().to_vec();
        let has_edge = |e: u32, f: u32| edges.binary_search(&(e, f)).is_ok();
        let mut elide = vec![false; n_barriers];
        let mut merged_start = 0u32;
        for g in 0..n_barriers as u32 {
            if (merged_start..=g).all(|e| !has_edge(e, g + 1)) {
                elide[g as usize] = true;
            } else {
                merged_start = g + 1;
            }
        }
        let count = elide.iter().filter(|&&e| e).count();
        if count == 0 {
            return 0;
        }

        // Rebuild the op array, dropping each worker's copy of every
        // elided barrier ordinal while preserving the emission layout.
        let old_ops = std::mem::take(&mut self.prog.ops);
        let mut order: Vec<(usize, u32, u32)> = self
            .prog
            .ranges
            .iter()
            .enumerate()
            .filter_map(|(w, r)| r.map(|(lo, hi)| (w, lo, hi)))
            .collect();
        order.sort_unstable_by_key(|&(_, lo, _)| lo);
        let mut new_ops: Vec<MicroOp> = Vec::with_capacity(old_ops.len());
        let mut removed: Vec<(usize, Vec<u32>)> = Vec::with_capacity(order.len());
        for &(w, lo, hi) in &order {
            let new_lo = new_ops.len() as u32;
            let mut ordinal = 0usize;
            let mut cut: Vec<u32> = Vec::new();
            for (pc, op) in old_ops[lo as usize..hi as usize].iter().enumerate() {
                if op.kind == MicroKind::GlobalBarrier {
                    let g = ordinal;
                    ordinal += 1;
                    if g < elide.len() && elide[g] {
                        cut.push(pc as u32);
                        continue;
                    }
                }
                new_ops.push(*op);
            }
            self.prog.ranges[w] = Some((new_lo, new_ops.len() as u32));
            removed.push((w, cut));
        }
        self.prog.ops = new_ops;

        // Re-anchor attached lint positions past the removed ops.
        // Uniform removal keeps the program congruent, so parallel_ok
        // is unaffected.
        if let Some(lint) = self.prog.lint.as_mut() {
            for d in lint.diagnostics.iter_mut() {
                if let Some(pos) = d.position.as_mut() {
                    if let Some((_, cut)) = removed.iter().find(|(w, _)| *w == d.worker) {
                        *pos -= cut.iter().filter(|&&c| (c as usize) < *pos).count();
                    }
                }
            }
        }

        self.prog.id = NEXT_PROGRAM_ID.fetch_add(1, Ordering::Relaxed);
        self.prog.analysis = Some(analyze::analyze(&self.prog));
        count
    }
}

/// Interpreter state for one stream-bearing worker.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Lane {
    pub(crate) worker: u32,
    pub(crate) tile: u32,
    pub(crate) lcp: bool,
    pub(crate) pos: u32,
    pub(crate) end: u32,
    pub(crate) cycle: u64,
    pub(crate) state: LaneState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneState {
    Running,
    /// Paused at a global barrier it arrived at on the recorded cycle
    /// (epoch-parallel execution stops here; the driver releases).
    AtGlobal(u64),
    /// Stream exhausted at the recorded cycle.
    Finished(u64),
}

/// Memory-access context the micro-op interpreter runs against: the
/// full [`MemorySystem`] for sequential execution, or a single tile's
/// private banks plus a shadow HBM for epoch-parallel execution.
pub(crate) trait ExecCtx {
    fn stats(&mut self) -> &mut SimStats;
    /// Called before each memory micro-op with its issue point; the
    /// shadow-HBM context uses it to key its call log.
    #[inline]
    fn set_op_ctx(&mut self, _cycle: u64, _worker: u32) {}
    /// Resolves one memory micro-op to its completion cycle.
    fn access(&mut self, op: &MicroOp, tile: usize, cycle: u64) -> u64;
}

impl ExecCtx for MemorySystem {
    #[inline]
    fn stats(&mut self) -> &mut SimStats {
        &mut self.stats
    }

    #[inline]
    fn access(&mut self, op: &MicroOp, tile: usize, cycle: u64) -> u64 {
        match op.kind {
            MicroKind::SharedLoad | MicroKind::SharedStore => {
                let is_store = op.kind == MicroKind::SharedStore;
                self.shared_l1_access(tile, op.bank as usize, op.a, op.b, is_store, cycle)
            }
            MicroKind::SharedDirLoad | MicroKind::SharedDirStore => {
                let is_store = op.kind == MicroKind::SharedDirStore;
                self.shared_direct_access(tile, op.b, is_store, cycle)
            }
            MicroKind::PrivLoad | MicroKind::PrivStore => {
                let is_store = op.kind == MicroKind::PrivStore;
                self.priv_l1(tile, op.bank as usize, op.b, is_store, cycle)
            }
            MicroKind::DirPeLoad | MicroKind::DirPeStore => {
                let is_store = op.kind == MicroKind::DirPeStore;
                self.priv_direct(tile, Some(op.bank as usize), op.b, is_store, cycle)
            }
            MicroKind::DirLcpLoad | MicroKind::DirLcpStore => {
                let is_store = op.kind == MicroKind::DirLcpStore;
                self.priv_direct(tile, None, op.b, is_store, cycle)
            }
            MicroKind::SpmShared => self.spm_shared_access(tile, op.bank as usize, cycle),
            MicroKind::SpmPrivate => cycle + self.uarch().l1_latency,
            _ => unreachable!("non-memory micro-op reached access()"),
        }
    }
}

/// HBM call record for epoch replay (see [`ShadowHbm`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HbmCall {
    /// Issue cycle of the micro-op that triggered the call.
    pub(crate) cycle: u64,
    /// Global worker id of the issuer.
    pub(crate) worker: u32,
    /// Call index within the micro-op (one op can fill, write back and
    /// prefetch).
    pub(crate) seq: u32,
    pub(crate) kind: HbmCallKind,
    pub(crate) line: u64,
    pub(crate) at: u64,
    /// Completion the shadow returned (validated for reads on replay).
    pub(crate) done: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HbmCallKind {
    Read,
    Write,
    Prefetch,
}

/// An [`Hbm`] clone that logs every call. Each tile of an epoch runs
/// against its own shadow (seeded from the epoch-start HBM state);
/// afterwards the logs are merged into the order sequential execution
/// would have issued them — `(op issue cycle, worker, seq)`, which is
/// exactly the event loop's processing order — and replayed against the
/// real stack. If every *read* completion matches, per-tile timing was
/// unaffected by cross-tile channel contention and the epoch commits
/// (write/prefetch completions are discarded by every caller, so their
/// divergence cannot alter timing; the replay still applies them, which
/// also reproduces the sequential read/write counters exactly).
#[derive(Debug)]
pub(crate) struct ShadowHbm {
    inner: Hbm,
    log: Vec<HbmCall>,
    cycle: u64,
    worker: u32,
    seq: u32,
}

impl ShadowHbm {
    pub(crate) fn new(inner: Hbm) -> Self {
        ShadowHbm {
            inner,
            log: Vec::new(),
            cycle: 0,
            worker: 0,
            seq: 0,
        }
    }

    #[inline]
    fn set_op(&mut self, cycle: u64, worker: u32) {
        self.cycle = cycle;
        self.worker = worker;
        self.seq = 0;
    }

    #[inline]
    fn record(&mut self, kind: HbmCallKind, line: u64, at: u64, done: u64) {
        self.log.push(HbmCall {
            cycle: self.cycle,
            worker: self.worker,
            seq: self.seq,
            kind,
            line,
            at,
            done,
        });
        self.seq += 1;
    }

    /// Consumes the shadow into its final HBM state and call log.
    pub(crate) fn into_state_and_log(self) -> (Hbm, Vec<HbmCall>) {
        (self.inner, self.log)
    }
}

impl HbmSink for ShadowHbm {
    #[inline]
    fn read(&mut self, line: u64, cycle: u64) -> u64 {
        let done = self.inner.read(line, cycle);
        self.record(HbmCallKind::Read, line, cycle, done);
        done
    }

    #[inline]
    fn write(&mut self, line: u64, cycle: u64) -> u64 {
        let done = self.inner.write(line, cycle);
        self.record(HbmCallKind::Write, line, cycle, done);
        done
    }

    #[inline]
    fn prefetch(&mut self, line: u64, cycle: u64) -> u64 {
        let done = self.inner.prefetch(line, cycle);
        self.record(HbmCallKind::Prefetch, line, cycle, done);
        done
    }
}

/// One tile's execution context for the epoch-parallel core: the tile's
/// private bank slices, a shadow HBM and a local stats block.
#[derive(Debug)]
pub(crate) struct TileExec<'a> {
    l1: &'a mut [CacheBank],
    l2: &'a mut [CacheBank],
    shadow: ShadowHbm,
    stats: SimStats,
    params: PrivParams,
    spm_latency: u64,
}

impl<'a> TileExec<'a> {
    pub(crate) fn new(
        l1: &'a mut [CacheBank],
        l2: &'a mut [CacheBank],
        hbm: Hbm,
        params: PrivParams,
        spm_latency: u64,
    ) -> Self {
        TileExec {
            l1,
            l2,
            shadow: ShadowHbm::new(hbm),
            stats: SimStats::default(),
            params,
            spm_latency,
        }
    }

    /// Consumes the context into its local stats, HBM call log and the
    /// shadow's final HBM state (merged directly into the real HBM on a
    /// proven replay-free commit).
    pub(crate) fn into_parts(self) -> (SimStats, Vec<HbmCall>, Hbm) {
        let (hbm, log) = self.shadow.into_state_and_log();
        (self.stats, log, hbm)
    }
}

impl ExecCtx for TileExec<'_> {
    #[inline]
    fn stats(&mut self) -> &mut SimStats {
        &mut self.stats
    }

    #[inline]
    fn set_op_ctx(&mut self, cycle: u64, worker: u32) {
        self.shadow.set_op(cycle, worker);
    }

    #[inline]
    fn access(&mut self, op: &MicroOp, _tile: usize, cycle: u64) -> u64 {
        let mut t = PrivTile {
            l1: &mut *self.l1,
            l2: &mut *self.l2,
            hbm: &mut self.shadow,
            stats: &mut self.stats,
        };
        match op.kind {
            MicroKind::PrivLoad | MicroKind::PrivStore => {
                let is_store = op.kind == MicroKind::PrivStore;
                priv_l1_access(
                    &mut t,
                    &self.params,
                    op.bank as usize,
                    op.b,
                    is_store,
                    cycle,
                )
            }
            MicroKind::DirPeLoad | MicroKind::DirPeStore => {
                let is_store = op.kind == MicroKind::DirPeStore;
                priv_direct_access(
                    &mut t,
                    &self.params,
                    Some(op.bank as usize),
                    op.b,
                    is_store,
                    cycle,
                )
            }
            MicroKind::DirLcpLoad | MicroKind::DirLcpStore => {
                let is_store = op.kind == MicroKind::DirLcpStore;
                priv_direct_access(&mut t, &self.params, None, op.b, is_store, cycle)
            }
            MicroKind::SpmPrivate => cycle + self.spm_latency,
            _ => unreachable!("shared-path micro-op in a private-tile context"),
        }
    }
}

/// Executes `lanes` over `prog`'s micro-ops until every lane finishes
/// or (with `stop_at_global`) pauses at a global barrier.
///
/// This is the micro-op twin of [`crate::Machine::run`]'s event loop:
/// same scheduler, same tie-breaks, same inline-continue rule, same
/// stat-update order — cycle counts are bit-for-bit identical.
///
/// `tile_base` is the tile index of `lanes[*].tile`'s smallest value
/// when executing a single tile (`tiles == 1`); sequential execution
/// passes `0` and the full tile count. Lanes must be in ascending
/// global-worker order: the scheduler breaks cycle ties by lane index,
/// which then matches the worker-id tie-break of [`crate::Machine::run`].
pub(crate) fn exec_span<C: ExecCtx>(
    ctx: &mut C,
    prog: &Program,
    lanes: &mut [Lane],
    tile_base: usize,
    tiles: usize,
    stop_at_global: bool,
) -> Result<(), SimError> {
    let ops = prog.micro_ops();
    let mut tile_barriers: Vec<BarrierState> = (0..tiles)
        .map(|t| BarrierState {
            expected: lanes
                .iter()
                .filter(|l| l.tile as usize == tile_base + t && !l.lcp)
                .count(),
            waiting: Vec::new(),
        })
        .collect();
    let mut global_barrier = BarrierState {
        expected: lanes.len(),
        waiting: Vec::new(),
    };

    let start_max = lanes.iter().map(|l| l.cycle).max().unwrap_or(0);
    let mut sched = Sched::new(lanes.len(), start_max);
    for (i, lane) in lanes.iter().enumerate() {
        if lane.state == LaneState::Running {
            sched.push(lane.cycle, i as u32);
        }
    }

    let mut cur = sched.pop();
    'outer: while let Some((mut cycle, li)) = cur {
        let lane = &mut lanes[li as usize];
        let tile = lane.tile as usize;
        loop {
            if lane.pos == lane.end {
                lane.cycle = cycle;
                lane.state = LaneState::Finished(cycle);
                cur = sched.pop();
                continue 'outer;
            }
            let op = &ops[lane.pos as usize];
            lane.pos += 1;
            ctx.stats().ops += 1;
            let done = match op.kind {
                MicroKind::Compute => {
                    ctx.stats().compute_cycles += op.a;
                    cycle + op.a
                }
                MicroKind::SharedLoad
                | MicroKind::SharedDirLoad
                | MicroKind::PrivLoad
                | MicroKind::DirPeLoad
                | MicroKind::DirLcpLoad => {
                    ctx.stats().loads += 1;
                    ctx.set_op_ctx(cycle, lane.worker);
                    let done = ctx.access(op, tile, cycle).max(cycle + 1);
                    ctx.stats().mem_stall_cycles += (done - cycle).saturating_sub(1);
                    done
                }
                MicroKind::SharedStore
                | MicroKind::SharedDirStore
                | MicroKind::PrivStore
                | MicroKind::DirPeStore
                | MicroKind::DirLcpStore => {
                    ctx.stats().stores += 1;
                    ctx.set_op_ctx(cycle, lane.worker);
                    let done = ctx.access(op, tile, cycle).max(cycle + 1);
                    ctx.stats().mem_stall_cycles += (done - cycle).saturating_sub(1);
                    done
                }
                MicroKind::SpmShared | MicroKind::SpmPrivate => {
                    ctx.stats().spm_accesses += 1;
                    ctx.set_op_ctx(cycle, lane.worker);
                    let done = ctx.access(op, tile, cycle);
                    ctx.stats().mem_stall_cycles += (done - cycle).saturating_sub(1);
                    done
                }
                MicroKind::TileBarrier => {
                    let b = &mut tile_barriers[tile - tile_base];
                    b.waiting.push((li, cycle));
                    if b.waiting.len() == b.expected {
                        release(b, cycle, &mut sched, ctx.stats());
                    }
                    cur = sched.pop();
                    continue 'outer;
                }
                MicroKind::GlobalBarrier => {
                    if stop_at_global {
                        lane.cycle = cycle;
                        lane.state = LaneState::AtGlobal(cycle);
                    } else {
                        let b = &mut global_barrier;
                        b.waiting.push((li, cycle));
                        if b.waiting.len() == b.expected {
                            release(b, cycle, &mut sched, ctx.stats());
                        }
                    }
                    cur = sched.pop();
                    continue 'outer;
                }
                MicroKind::PoisonSpm => {
                    return Err(SimError::SpmUnavailable {
                        config: prog.hw,
                        worker: lane.worker as usize,
                    });
                }
                MicroKind::PoisonLcpSpm => {
                    // Reproduce the memory system's own assertion: the
                    // access is counted, then the access path panics.
                    ctx.stats().spm_accesses += 1;
                    panic!("LCPs have no scratchpad");
                }
                MicroKind::PoisonLcpBar => {
                    return Err(SimError::LcpBarrier { tile });
                }
            };
            match sched.step(done, li) {
                Some(next) => {
                    cur = Some(next);
                    continue 'outer;
                }
                None => cycle = done,
            }
        }
    }

    let mut blocked: Vec<usize> = tile_barriers
        .iter()
        .flat_map(|b| {
            b.waiting
                .iter()
                .map(|&(l, _)| lanes[l as usize].worker as usize)
        })
        .collect();
    blocked.extend(
        global_barrier
            .waiting
            .iter()
            .map(|&(l, _)| lanes[l as usize].worker as usize),
    );
    if !blocked.is_empty() {
        if stop_at_global {
            // Lanes paused at the global barrier are blocked too: the
            // barrier can never complete once a peer is deadlocked.
            blocked.extend(lanes.iter().filter_map(|l| {
                matches!(l.state, LaneState::AtGlobal(_)).then_some(l.worker as usize)
            }));
        }
        blocked.sort_unstable();
        return Err(SimError::BarrierDeadlock { blocked });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamBuilder;

    fn geom() -> Geometry {
        Geometry::new(2, 4)
    }

    fn ua() -> MicroArch {
        MicroArch::paper()
    }

    fn ops_of(builders: Vec<(usize, StreamBuilder)>) -> Vec<(usize, Vec<Op>)> {
        builders
            .into_iter()
            .map(|(w, b)| (w, b.into_stream().collect()))
            .collect()
    }

    fn compile(hw: HwConfig, streams: &[(usize, Vec<Op>)]) -> Program {
        Program::compile(
            geom(),
            hw,
            &ua(),
            streams.iter().map(|(w, v)| (*w, v.as_slice())),
        )
    }

    #[test]
    fn lowers_shared_routing_at_compile_time() {
        let mut b = StreamBuilder::new();
        b.load(0x1000).store(0x1040).compute(0);
        let streams = ops_of(vec![(0, b)]);
        let p = compile(HwConfig::Sc, &streams);
        let ops = p.micro_ops();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].kind, MicroKind::SharedLoad);
        // line = 0x1000 / 64 = 64; 4 L1 banks in SC: bank 0, local 16.
        assert_eq!(ops[0].b, 64);
        assert_eq!(ops[0].bank, 0);
        assert_eq!(ops[0].a, 16);
        assert_eq!(ops[1].kind, MicroKind::SharedStore);
        assert_eq!(ops[1].bank, 1);
        // Compute(0) clamps to 1 at compile time.
        assert_eq!(ops[2].kind, MicroKind::Compute);
        assert_eq!(ops[2].a, 1);
    }

    #[test]
    fn lowers_private_and_lcp_kinds() {
        let mut pe = StreamBuilder::new();
        pe.load(0);
        let mut lcp = StreamBuilder::new();
        lcp.store(0);
        let g = geom();
        let streams = ops_of(vec![(g.pe_id(1, 2), pe), (g.lcp_id(0), lcp)]);
        let p = compile(HwConfig::Pc, &streams);
        let pe_ops = {
            let (lo, hi) = p.ranges[g.pe_id(1, 2)].unwrap();
            &p.micro_ops()[lo as usize..hi as usize]
        };
        assert_eq!(pe_ops[0].kind, MicroKind::PrivLoad);
        assert_eq!(pe_ops[0].bank, 2);
        let lcp_ops = {
            let (lo, hi) = p.ranges[g.lcp_id(0)].unwrap();
            &p.micro_ops()[lo as usize..hi as usize]
        };
        assert_eq!(lcp_ops[0].kind, MicroKind::DirLcpStore);

        let p = compile(HwConfig::Sc, &streams);
        let (lo, _) = p.ranges[g.lcp_id(0)].unwrap();
        assert_eq!(p.micro_ops()[lo as usize].kind, MicroKind::SharedDirStore);
    }

    #[test]
    fn poisons_invalid_ops_instead_of_failing_compile() {
        let mut spm = StreamBuilder::new();
        spm.spm_load(0);
        let mut lcp_bar = StreamBuilder::new();
        lcp_bar.tile_barrier();
        let g = geom();
        let streams = ops_of(vec![(g.pe_id(0, 0), spm), (g.lcp_id(1), lcp_bar)]);
        let p = compile(HwConfig::Pc, &streams);
        assert_eq!(p.micro_ops()[0].kind, MicroKind::PoisonSpm);
        assert_eq!(p.micro_ops()[1].kind, MicroKind::PoisonLcpBar);
        assert!(!p.parallel_ok(), "poisoned programs are not parallel-safe");
    }

    #[test]
    fn congruence_requires_matching_barriers() {
        let g = geom();
        // Congruent: both PEs of tile 0 barrier identically.
        let mk = |tb: u32| {
            let mut b = StreamBuilder::new();
            for _ in 0..tb {
                b.tile_barrier();
            }
            b.global_barrier().compute(1);
            b
        };
        let streams = ops_of(vec![(g.pe_id(0, 0), mk(2)), (g.pe_id(0, 1), mk(2))]);
        assert!(compile(HwConfig::Pc, &streams).parallel_ok());

        // Tile-barrier counts differ within the segment: not congruent.
        let streams = ops_of(vec![(g.pe_id(0, 0), mk(2)), (g.pe_id(0, 1), mk(1))]);
        assert!(!compile(HwConfig::Pc, &streams).parallel_ok());

        // Global-barrier counts differ: not congruent.
        let mut no_gb = StreamBuilder::new();
        no_gb.compute(1);
        let streams = ops_of(vec![(g.pe_id(0, 0), mk(0)), (g.pe_id(0, 1), no_gb)]);
        assert!(!compile(HwConfig::Pc, &streams).parallel_ok());
    }

    #[test]
    fn recompile_reuses_buffers_and_clears_lint() {
        let mut b = StreamBuilder::new();
        b.compute(5);
        let streams = ops_of(vec![(0, b)]);
        let mut p = compile(HwConfig::Sc, &streams);
        p.attach_lint(Vec::new());
        assert_eq!(p.lint_clean(), Some(true));
        let mut b2 = StreamBuilder::new();
        b2.compute(1).compute(2);
        let streams2 = ops_of(vec![(1, b2)]);
        p.recompile(
            geom(),
            HwConfig::Ps,
            &ua(),
            streams2.iter().map(|(w, v)| (*w, v.as_slice())),
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p.hw(), HwConfig::Ps);
        assert!(p.ranges[0].is_none());
        assert_eq!(p.ranges[1], Some((0, 2)));
        assert_eq!(p.lint_clean(), None);
    }

    /// Replays `(worker, ops)` streams through the streaming builder,
    /// exactly as `Program::compile` consumes them.
    fn build(hw: HwConfig, streams: &[(usize, Vec<Op>)]) -> Program {
        let g = geom();
        let mut b = ProgramBuilder::new();
        b.begin(g, hw, &ua());
        for (w, ops) in streams {
            match g.locate(*w) {
                (tile, Some(pe)) => b.begin_pe(tile, pe),
                (tile, None) => b.begin_lcp(tile),
            }
            for &op in ops {
                match op {
                    Op::Compute(n) => b.compute(n),
                    Op::Load(a) => b.load(a),
                    Op::Store(a) => b.store(a),
                    Op::SpmLoad(o) => b.spm_load(o),
                    Op::SpmStore(o) => b.spm_store(o),
                    Op::TileBarrier => b.tile_barrier(),
                    Op::GlobalBarrier => b.global_barrier(),
                }
            }
        }
        b.finish().clone()
    }

    /// The same streams as a `ProgramSet`, for the batch lint oracle.
    fn materialize(streams: &[(usize, Vec<Op>)]) -> verify::ProgramSet {
        let g = geom();
        let mut set = verify::ProgramSet::new(g);
        for (w, ops) in streams {
            match g.locate(*w) {
                (tile, Some(pe)) => set.set_pe(tile, pe, ops.iter().copied()),
                (tile, None) => set.set_lcp(tile, ops.iter().copied()),
            }
        }
        set
    }

    /// Exercises every op kind, both worker kinds and a non-ascending
    /// emission order (LCP between the PE streams, as the OP kernel
    /// emits) on every hardware config.
    fn mixed_streams() -> Vec<(usize, Vec<Op>)> {
        let g = geom();
        let mk_pe = |seed: u64| {
            let mut b = StreamBuilder::new();
            b.load(0x1000 + seed * 64)
                .compute(2)
                .spm_load(8)
                .spm_store(16)
                .store(0x2000 + seed * 4)
                .tile_barrier()
                .global_barrier()
                .compute(0);
            b
        };
        let mut lcp = StreamBuilder::new();
        lcp.load(0x3000).compute(1).global_barrier().store(0x3040);
        ops_of(vec![
            (g.pe_id(0, 0), mk_pe(0)),
            (g.pe_id(0, 1), mk_pe(1)),
            (g.lcp_id(0), lcp),
            (g.pe_id(1, 0), mk_pe(2)),
            (g.pe_id(1, 1), mk_pe(3)),
        ])
    }

    #[test]
    fn builder_matches_compile_on_every_config() {
        let streams = mixed_streams();
        for hw in [HwConfig::Sc, HwConfig::Scs, HwConfig::Pc, HwConfig::Ps] {
            let p = compile(hw, &streams);
            let b = build(hw, &streams);
            assert_eq!(b.micro_ops(), p.micro_ops(), "{hw}: micro-ops diverge");
            assert_eq!(b.ranges, p.ranges, "{hw}: ranges diverge");
            assert_eq!(b.parallel_ok(), p.parallel_ok(), "{hw}: parallel_ok");
            assert_eq!(b.geometry(), p.geometry());
            assert_eq!(b.hw(), p.hw());
            assert_ne!(b.id(), p.id(), "each build is a fresh artifact");
        }
    }

    #[test]
    fn builder_lint_matches_batch_lint() {
        // mixed_streams carries Compute(0) warnings plus, depending on
        // config, SPM-unavailability errors; add barrier-congruence
        // violations (tile and global) and LCP misuse on top.
        let g = geom();
        let mut streams = mixed_streams();
        let mut skewed = StreamBuilder::new();
        skewed.tile_barrier().global_barrier().global_barrier();
        streams.push((g.pe_id(1, 2), skewed.into_stream().collect()));
        let mut lcp_bad = StreamBuilder::new();
        lcp_bad.tile_barrier().spm_load(0);
        streams.push((g.lcp_id(1), lcp_bad.into_stream().collect()));

        for hw in [HwConfig::Sc, HwConfig::Scs, HwConfig::Pc, HwConfig::Ps] {
            let b = build(hw, &streams);
            let want = verify::lint(&materialize(&streams), hw, &ua(), None);
            assert_eq!(
                b.lint_diagnostics().expect("finish attaches a verdict"),
                want.as_slice(),
                "{hw}: lint reports diverge"
            );
            assert_eq!(b.lint_clean(), Some(verify::is_clean(&want)));
        }
    }

    #[test]
    fn builder_reuse_resets_everything() {
        let mut b = ProgramBuilder::new();
        // Build 1: poisoned (SPM under PC) and congruence-broken.
        b.begin(geom(), HwConfig::Pc, &ua());
        b.begin_pe(0, 0);
        b.spm_load(0);
        b.global_barrier();
        b.begin_pe(0, 1);
        b.compute(3);
        let first_id = {
            let p = b.finish();
            assert_eq!(p.lint_clean(), Some(false));
            assert!(!p.parallel_ok());
            p.id()
        };
        // Build 2: clean; nothing from build 1 may leak through.
        b.begin(geom(), HwConfig::Ps, &ua());
        b.begin_pe(0, 0);
        b.compute(2);
        b.global_barrier();
        b.begin_pe(0, 1);
        b.compute(5);
        b.global_barrier();
        let p = b.finish();
        assert_ne!(p.id(), first_id);
        assert_eq!(p.len(), 4);
        assert_eq!(p.hw(), HwConfig::Ps);
        assert_eq!(p.lint_clean(), Some(true));
        assert!(p.lint_diagnostics().expect("verdict attached").is_empty());
        assert!(p.parallel_ok());
    }

    #[test]
    #[should_panic(expected = "worker given two streams")]
    fn builder_rejects_duplicate_worker() {
        let mut b = ProgramBuilder::new();
        b.begin(geom(), HwConfig::Sc, &ua());
        b.begin_pe(0, 0);
        b.compute(1);
        b.begin_pe(0, 0);
    }

    #[test]
    fn builder_unsupported_config_is_rejected_like_lint() {
        let g = Geometry::new(1, 1);
        let mut b = ProgramBuilder::new();
        b.begin(g, HwConfig::Scs, &ua());
        b.begin_pe(0, 0);
        b.spm_load(0); // would be a per-op error; suppressed when unsupported
        let p = b.finish();
        assert_eq!(p.lint_clean(), Some(false));
        let diags = p.lint_diagnostics().unwrap();
        assert_eq!(diags.len(), 1);
        assert!(matches!(
            diags[0].kind,
            LintKind::UnsupportedConfig {
                config: HwConfig::Scs
            }
        ));
    }

    #[test]
    fn barrier_divergence_matches_projection_zip() {
        // Oracle: materialize the projections and zip, as lint does.
        let project = |segs: &[u32]| {
            let mut ops = Vec::new();
            for (i, &t) in segs.iter().enumerate() {
                ops.resize(ops.len() + t as usize, Op::TileBarrier);
                if i + 1 < segs.len() {
                    ops.push(Op::GlobalBarrier);
                }
            }
            ops
        };
        let cases: &[(&[u32], &[u32])] = &[
            (&[2], &[1]),
            (&[2], &[2, 0]),
            (&[1], &[1, 0]),
            (&[0, 3], &[0, 1]),
            (&[1, 0, 2], &[1, 0]),
            (&[0], &[5, 1]),
            (&[3, 1], &[3, 2, 1]),
        ];
        for &(r, s) in cases {
            let (rp, sp) = (project(r), project(s));
            let want = rp
                .iter()
                .zip(sp.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| rp.len().min(sp.len()));
            assert_eq!(barrier_divergence(r, s), want, "segs {r:?} vs {s:?}");
        }
    }
}
