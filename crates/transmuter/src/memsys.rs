//! The reconfigurable two-level memory system.
//!
//! Resolves each worker access to a completion cycle while updating
//! cache/SPM/HBM state and statistics. Latency composition follows
//! Table II: crossbar response (1 cycle), shared-crossbar arbitration
//! (1 cycle + 0..Nsrc−1 serialization on same-cycle same-bank
//! conflicts), bank access latency, and the HBM channel model.
//!
//! Bank interleaving is line-granular; because banks see only every
//! `nbanks`-th line, they index their sets with the *local* line
//! (`line / nbanks`) so the full capacity is usable.

use crate::cache::{CacheBank, ProbeResult};
use crate::config::{Geometry, HwConfig, L1Mode, L2Mode, MicroArch};
use crate::hbm::{Hbm, HbmSink};
use crate::op::Addr;
use crate::stats::SimStats;

/// Claim-port kinds for same-cycle bank-conflict tracking (flattened to
/// an index together with the tile and bank, see
/// [`MemorySystem::port_index`]).
const PORT_L1: usize = 0;
const PORT_L2: usize = 1;
const PORT_SPM: usize = 2;
const PORT_KINDS: usize = 3;

/// Divide/modulo by a fixed divisor, reduced to shift/mask when the
/// divisor is a power of two (line sizes and bank counts almost always
/// are; the fallback keeps odd geometries correct).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FastDiv {
    n: u64,
    shift: Option<u32>,
}

impl FastDiv {
    pub(crate) fn new(n: u64) -> Self {
        let n = n.max(1);
        FastDiv {
            n,
            shift: n.is_power_of_two().then(|| n.trailing_zeros()),
        }
    }

    #[inline]
    pub(crate) fn div(self, x: u64) -> u64 {
        match self.shift {
            Some(s) => x >> s,
            None => x / self.n,
        }
    }

    #[inline]
    pub(crate) fn rem(self, x: u64) -> u64 {
        match self.shift {
            Some(_) => x & (self.n - 1),
            None => x % self.n,
        }
    }
}

/// The memory system: per-tile L1 banks, L2 banks, and the HBM stack.
#[derive(Debug)]
pub struct MemorySystem {
    geom: Geometry,
    ua: MicroArch,
    hw: HwConfig,
    /// L1 cache banks, flattened `tile * l1_banks + bank` (one
    /// indirection on the access fast path instead of two).
    l1: Vec<CacheBank>,
    /// L1 cache banks per tile in the current mode.
    l1_banks: usize,
    /// L2 banks, flattened `tile * l2_banks + bank` (always caches).
    l2: Vec<CacheBank>,
    /// L2 banks per tile (`pes_per_tile`).
    l2_banks: usize,
    hbm: Hbm,
    cur_cycle: u64,
    /// Epoch stamp bumped whenever `cur_cycle` changes; a claim slot is
    /// live only when its epoch matches (cheap O(1) "clear all").
    epoch: u64,
    /// Per-port claim slots, packed `epoch << 16 | count` so the
    /// conflict check is a single load/store.
    claims: Vec<u64>,
    /// Precomputed `worker → (tile, pe or -1)` map (avoids per-access
    /// division in [`Geometry::locate`]).
    locs: Vec<(u32, i32)>,
    line_div: FastDiv,
    /// Divisor for the current L1 cache-bank count (mode-dependent).
    l1_div: FastDiv,
    /// Divisor for the shared-L2 global bank count (`total_pes`).
    l2_total_div: FastDiv,
    /// Divisor for PEs per tile.
    b_div: FastDiv,
    /// Divisor for the SPM bank count in the current mode (1 when the
    /// mode has no shared SPM).
    spm_div: FastDiv,
    /// Divisor for the word size (SPM offsets → word index).
    word_div: FastDiv,
    /// Event counters for the current run.
    pub stats: SimStats,
}

impl MemorySystem {
    /// Creates the memory system in configuration `hw`.
    pub fn new(geom: Geometry, ua: MicroArch, hw: HwConfig) -> Self {
        let locs = (0..geom.total_workers())
            .map(|w| {
                let (tile, pe) = geom.locate(w);
                (tile as u32, pe.map_or(-1, |p| p as i32))
            })
            .collect();
        let claim_slots = PORT_KINDS * geom.tiles() * geom.pes_per_tile();
        let mut sys = MemorySystem {
            geom,
            hbm: Hbm::new(
                ua.hbm_channels,
                ua.line_bytes,
                ua.hbm_bytes_per_cycle,
                ua.hbm_latency_min,
                ua.hbm_latency_max,
            ),
            line_div: FastDiv::new(ua.line_bytes as u64),
            l1_div: FastDiv::new(1),
            l2_total_div: FastDiv::new(geom.total_pes() as u64),
            b_div: FastDiv::new(geom.pes_per_tile() as u64),
            spm_div: FastDiv::new(1),
            word_div: FastDiv::new(ua.word_bytes as u64),
            ua,
            hw,
            l1: Vec::new(),
            l1_banks: 0,
            l2: Vec::new(),
            l2_banks: geom.pes_per_tile(),
            cur_cycle: 0,
            epoch: 1,
            claims: vec![0; claim_slots],
            locs,
            stats: SimStats::default(),
        };
        sys.build_banks();
        sys
    }

    fn build_banks(&mut self) {
        let sets = self.ua.sets_per_bank();
        let b = self.geom.pes_per_tile();
        let l1_banks = self.ua.l1_cache_banks(b, self.hw.l1());
        self.l1_div = FastDiv::new(l1_banks as u64);
        self.spm_div = FastDiv::new((b - l1_banks) as u64);
        self.l1_banks = l1_banks;
        self.l1 = (0..self.geom.tiles() * l1_banks)
            .map(|_| CacheBank::new(sets, self.ua.ways))
            .collect();
        self.l2_banks = b;
        self.l2 = (0..self.geom.tiles() * b)
            .map(|_| CacheBank::new(sets, self.ua.ways))
            .collect();
    }

    #[inline]
    fn port_index(&self, kind: usize, tile: usize, bank: usize) -> usize {
        (kind * self.geom.tiles() + tile) * self.geom.pes_per_tile() + bank
    }

    /// Current hardware configuration.
    pub fn config(&self) -> HwConfig {
        self.hw
    }

    /// Geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Microarchitecture parameters.
    pub fn uarch(&self) -> &MicroArch {
        &self.ua
    }

    /// True if the current configuration exposes scratchpad to PEs.
    pub fn has_spm(&self) -> bool {
        matches!(self.hw.l1(), L1Mode::SharedCacheSpm | L1Mode::PrivateSpm)
    }

    /// Resets per-run statistics and HBM channel occupancy. Cache
    /// contents are retained (warm across SpMV invocations, as on the
    /// real machine).
    pub fn begin_run(&mut self) {
        self.stats = SimStats::default();
        self.hbm.reset();
        self.cur_cycle = 0;
        self.epoch += 1;
    }

    /// Copies the HBM channel counters into the run stats. Deferred to
    /// the end of a run (the counters are absolute since [`Self::begin_run`],
    /// so syncing once is equivalent to syncing after every access).
    pub(crate) fn sync_hbm_stats(&mut self) {
        self.stats.hbm_line_reads = self.hbm.reads();
        self.stats.hbm_line_writes = self.hbm.writes();
        self.stats.hbm_queue_cycles = self.hbm.queue_cycles();
    }

    #[inline]
    fn claim(&mut self, cycle: u64, kind: usize, tile: usize, bank: usize) -> u64 {
        if cycle != self.cur_cycle {
            self.cur_cycle = cycle;
            // Invalidate every outstanding claim in O(1): slots stamped
            // with an older epoch read as zero.
            self.epoch += 1;
        }
        let idx = self.port_index(kind, tile, bank);
        // Slot layout: `epoch << 16 | count`. Same-cycle same-port
        // claims are bounded by the worker count, far below 2^16.
        let slot = self.claims[idx];
        let prior = if slot >> 16 == self.epoch {
            slot & 0xffff
        } else {
            0
        };
        self.claims[idx] = (self.epoch << 16) | (prior + 1);
        self.stats.conflict_cycles += prior;
        prior
    }

    /// Resolves a global (cached address space) access.
    ///
    /// Returns the cycle at which the worker may issue its next op.
    /// Stores are acknowledged early (single-entry store buffer, as on
    /// the M4F): state updates and bandwidth are fully charged, but the
    /// returned cycle only covers the L1-level round trip.
    pub fn global_access(&mut self, worker: usize, addr: Addr, is_store: bool, cycle: u64) -> u64 {
        if is_store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let line = self.line_div.div(addr);
        let (tile32, pe32) = self.locs[worker];
        let tile = tile32 as usize;
        let pe = (pe32 >= 0).then_some(pe32 as usize);
        let completion = match (pe, self.hw.l1()) {
            // LCPs have no L1; they access the L2 level directly, as do
            // PEs in PS mode (their level-1 banks are scratchpad).
            (None, _) | (Some(_), L1Mode::PrivateSpm) => match self.hw.l2() {
                L2Mode::SharedCache => self.shared_direct_access(tile, line, is_store, cycle),
                L2Mode::PrivateCache => {
                    let (mut t, p) = self.priv_tile(tile);
                    priv_direct_access(&mut t, &p, pe, line, is_store, cycle)
                }
            },
            (Some(_), L1Mode::SharedCache | L1Mode::SharedCacheSpm) => {
                // `l1_div` tracks the bank count for the *current* L1
                // mode (rebuilt alongside the banks on reconfigure).
                let bank = self.l1_div.rem(line) as usize;
                let local = self.l1_div.div(line);
                self.shared_l1_access(tile, bank, local, line, is_store, cycle)
            }
            (Some(pe), L1Mode::PrivateCache) => {
                let (mut t, p) = self.priv_tile(tile);
                priv_l1_access(&mut t, &p, pe, line, is_store, cycle)
            }
        };
        completion.max(cycle + 1)
    }

    /// Direct L2 access under a *shared* L2 (LCPs in SC/SCS). The bank
    /// route ignores the requester, so no PE identity is needed.
    pub(crate) fn shared_direct_access(
        &mut self,
        tile: usize,
        line: u64,
        is_store: bool,
        cycle: u64,
    ) -> u64 {
        let at = cycle + self.ua.xbar_latency;
        let done = self.l2_fill(tile, None, line, is_store, at);
        if is_store {
            cycle + self.ua.xbar_latency + 1
        } else {
            done
        }
    }

    /// Shared (arbitrated) L1 access for a PE in SC/SCS with the bank
    /// route already resolved (`bank = line % nbanks`,
    /// `local = line / nbanks`). Shared L1 implies shared L2, whose
    /// route ignores the requesting PE, so none is passed.
    pub(crate) fn shared_l1_access(
        &mut self,
        tile: usize,
        bank: usize,
        local: u64,
        line: u64,
        is_store: bool,
        cycle: u64,
    ) -> u64 {
        let conflicts = self.claim(cycle, PORT_L1, tile, bank);
        self.stats.xbar_traversals += 1;
        let base_lat =
            self.ua.xbar_latency + self.ua.arbitration_latency + conflicts + self.ua.l1_latency;
        let nbanks = self.l1_div.n;
        let bidx = tile * self.l1_banks + bank;
        let prefetch = self.ua.prefetch;
        let bank_ref = &mut self.l1[bidx];
        let probe = bank_ref.access(local, is_store);
        // Per-bank tagged stride prefetcher (Table II lists one on
        // every RCache bank): any sequential access — hit or miss —
        // pulls the bank's next line into L1. This is what makes
        // COO/CSC streaming fast, and what pollutes the bank for
        // resident structures (merge heaps, vector segments), the
        // §III-C.3 effect.
        let stride = prefetch && bank_ref.stride_detected(local);
        let pf_wanted = stride && !bank_ref.contains(local + 1);
        let completion = match probe {
            ProbeResult::Hit => {
                self.stats.l1_hits += 1;
                cycle + base_lat
            }
            ProbeResult::Miss {
                victim_dirty,
                victim_line,
            } => self.shared_l1_miss(
                tile,
                bank,
                line,
                nbanks,
                victim_dirty,
                victim_line,
                is_store,
                cycle + base_lat,
            ),
        };
        if pf_wanted {
            let pf_local = local + 1;
            let pf_global = pf_local * nbanks + bank as u64;
            // Asynchronous: charge the L2-side traffic, don't
            // extend the demand access.
            let _ = self.l2_fill(tile, None, pf_global, false, cycle + base_lat);
            self.stats.prefetches += 1;
            if let Some(dirty_local) = self.l1[bidx].install(pf_local) {
                self.l2_writeback(
                    tile,
                    None,
                    dirty_local * nbanks + bank as u64,
                    cycle + base_lat,
                );
            }
        }
        completion
    }

    /// Shared-L1 miss slow path, outlined so the hit loop stays compact.
    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn shared_l1_miss(
        &mut self,
        tile: usize,
        bank: usize,
        line: u64,
        nbanks: u64,
        victim_dirty: bool,
        victim_line: Option<u64>,
        is_store: bool,
        at: u64,
    ) -> u64 {
        self.stats.l1_misses += 1;
        if victim_dirty {
            let victim_global = victim_line.expect("dirty implies valid") * nbanks + bank as u64;
            self.l2_writeback(tile, None, victim_global, at);
        }
        let fill_done = self.l2_fill(tile, None, line, false, at);
        if is_store {
            at + 1
        } else {
            fill_done
        }
    }

    /// L2 bank selection: returns `(tile, bank, local_line, nbanks_total,
    /// shared)` for a requester.
    fn l2_route(
        &self,
        tile: usize,
        pe: Option<usize>,
        line: u64,
    ) -> (usize, usize, u64, u64, bool) {
        match self.hw.l2() {
            L2Mode::SharedCache => {
                let g = self.l2_total_div.rem(line);
                (
                    self.b_div.div(g) as usize,
                    self.b_div.rem(g) as usize,
                    self.l2_total_div.div(line),
                    self.l2_total_div.n,
                    true,
                )
            }
            L2Mode::PrivateCache => match pe {
                // Private L2: bank i is PE i's own 4 kB cache, transparent
                // crossbar, full line space in one bank.
                Some(pe) => (tile, pe, line, 1, false),
                // The LCP round-robins over its tile's banks; contention
                // with the owning PE is second-order (LCP traffic is
                // small) and ignored.
                None => (
                    tile,
                    self.b_div.rem(line) as usize,
                    self.b_div.div(line),
                    self.b_div.n,
                    false,
                ),
            },
        }
    }

    /// Fills `line` at the L2 level (demand read or store-allocate),
    /// returning the data-ready cycle.
    fn l2_fill(
        &mut self,
        tile: usize,
        pe: Option<usize>,
        line: u64,
        is_store: bool,
        at: u64,
    ) -> u64 {
        let (t2, bank, local, nbanks, shared) = self.l2_route(tile, pe, line);
        let mut lat = self.ua.xbar_latency + self.ua.l2_latency;
        if shared {
            let conflicts = self.claim(at, PORT_L2, t2, bank);
            self.stats.xbar_traversals += 1;
            lat += self.ua.arbitration_latency + conflicts;
        }
        let bidx = t2 * self.l2_banks + bank;
        let prefetch = self.ua.prefetch;
        let bank_ref = &mut self.l2[bidx];
        let probe = bank_ref.access(local, is_store);
        // Tagged stride prefetcher on the L2 banks as well: sequential
        // access streams (hit or miss) keep pulling the next line from
        // main memory.
        let stride = prefetch && bank_ref.stride_detected(local);
        let pf_wanted = stride && !bank_ref.contains(local + 1);
        let completion = match probe {
            ProbeResult::Hit => {
                self.stats.l2_hits += 1;
                at + lat
            }
            ProbeResult::Miss {
                victim_dirty,
                victim_line,
            } => {
                self.stats.l2_misses += 1;
                if victim_dirty {
                    let victim_global =
                        victim_line.expect("dirty implies valid") * nbanks + (line % nbanks);
                    // Writebacks consume HBM bandwidth off the critical path.
                    self.hbm.write(victim_global, at + lat);
                }
                let done = self.hbm.read(line, at + lat);
                done + self.ua.xbar_latency
            }
        };
        if pf_wanted {
            let pf_local = local + 1;
            let pf_global = pf_local * nbanks + (line % nbanks);
            self.hbm.prefetch(pf_global, at + lat);
            self.stats.prefetches += 1;
            if let Some(dirty_local) = self.l2[bidx].install(pf_local) {
                self.hbm
                    .write(dirty_local * nbanks + (line % nbanks), at + lat);
            }
        }
        completion
    }

    /// Installs an L1 dirty victim into L2 (write-back path, off the
    /// critical path; charged for energy/bandwidth only).
    fn l2_writeback(&mut self, tile: usize, pe: Option<usize>, line: u64, at: u64) {
        let (t2, bank, local, nbanks, shared) = self.l2_route(tile, pe, line);
        if shared {
            self.stats.xbar_traversals += 1;
        }
        self.stats.l2_writeback_installs += 1;
        let bidx = t2 * self.l2_banks + bank;
        // A full-line writeback needs no fetch: install directly, dirty.
        if let Some(dirty_local) = self.l2[bidx].install(local) {
            self.hbm.write(dirty_local * nbanks + (line % nbanks), at);
        }
        // Mark dirty via a store probe (guaranteed hit after install;
        // only bank-internal counters are touched, not run stats).
        let _ = self.l2[bidx].access(local, true);
    }

    /// Resolves a scratchpad access.
    ///
    /// # Panics
    ///
    /// Panics if the current configuration has no SPM visible to the
    /// worker (kernel/config mismatch — callers must check
    /// [`Self::has_spm`]) or if an LCP issues an SPM op.
    pub fn spm_access(&mut self, worker: usize, offset: u32, _is_store: bool, cycle: u64) -> u64 {
        self.stats.spm_accesses += 1;
        let (tile32, pe32) = self.locs[worker];
        let tile = tile32 as usize;
        assert!(pe32 >= 0, "LCPs have no scratchpad");
        match self.hw.l1() {
            L1Mode::SharedCacheSpm => {
                let word = self.word_div.div(offset as u64);
                let bank = self.spm_div.rem(word) as usize;
                self.spm_shared_access(tile, bank, cycle)
            }
            // Own bank, transparent crossbar.
            L1Mode::PrivateSpm => cycle + self.ua.l1_latency,
            L1Mode::SharedCache | L1Mode::PrivateCache => {
                panic!("spm access in a cache-only configuration ({:?})", self.hw)
            }
        }
    }

    /// Shared-SPM access (SCS) with the bank already resolved
    /// (`bank = (offset / word_bytes) % spm_banks`).
    pub(crate) fn spm_shared_access(&mut self, tile: usize, bank: usize, cycle: u64) -> u64 {
        let conflicts = self.claim(cycle, PORT_SPM, tile, bank);
        self.stats.xbar_traversals += 1;
        cycle + self.ua.xbar_latency + self.ua.arbitration_latency + conflicts + self.ua.l1_latency
    }

    /// Parameter block for the private-hierarchy access paths (PC/PS):
    /// everything those paths read from the memory system besides the
    /// tile's own banks, so they can run against either the real system
    /// or a per-tile split (see [`MemorySystem::split_tiles`]).
    pub(crate) fn priv_params(&self) -> PrivParams {
        PrivParams {
            xbar: self.ua.xbar_latency,
            l1_latency: self.ua.l1_latency,
            l2_latency: self.ua.l2_latency,
            prefetch: self.ua.prefetch,
            l1_nbanks: self.l1_div.n,
            b_div: self.b_div,
        }
    }

    /// Mutable view of one tile's private banks plus the HBM and stats.
    pub(crate) fn priv_tile(&mut self, tile: usize) -> (PrivTile<'_, Hbm>, PrivParams) {
        let p = self.priv_params();
        let l1_lo = tile * self.l1_banks;
        let l2_lo = tile * self.l2_banks;
        (
            PrivTile {
                l1: &mut self.l1[l1_lo..l1_lo + self.l1_banks],
                l2: &mut self.l2[l2_lo..l2_lo + self.l2_banks],
                hbm: &mut self.hbm,
                stats: &mut self.stats,
            },
            p,
        )
    }

    /// Private-L1 access (PC) routed through [`priv_l1_access`] — the
    /// same code path the epoch-parallel tile core executes.
    pub(crate) fn priv_l1(
        &mut self,
        tile: usize,
        pe: usize,
        line: u64,
        is_store: bool,
        cycle: u64,
    ) -> u64 {
        let (mut t, p) = self.priv_tile(tile);
        priv_l1_access(&mut t, &p, pe, line, is_store, cycle)
    }

    /// Direct private-L2 access (PS PEs, or LCPs under PC/PS).
    pub(crate) fn priv_direct(
        &mut self,
        tile: usize,
        pe: Option<usize>,
        line: u64,
        is_store: bool,
        cycle: u64,
    ) -> u64 {
        let (mut t, p) = self.priv_tile(tile);
        priv_direct_access(&mut t, &p, pe, line, is_store, cycle)
    }

    /// Splits the memory system into independent per-tile views (L1 and
    /// L2 bank slices) plus the shared HBM, run stats and parameters.
    /// Only meaningful under PC/PS, where tiles share no bank and no
    /// arbitrated port — HBM is the sole cross-tile coupling.
    pub(crate) fn split_tiles(&mut self) -> TileSplit<'_> {
        let tiles = self.geom.tiles();
        let params = self.priv_params();
        let l1: Vec<&mut [CacheBank]> = if self.l1_banks == 0 {
            (0..tiles).map(|_| Default::default()).collect()
        } else {
            self.l1.chunks_mut(self.l1_banks).collect()
        };
        let l2: Vec<&mut [CacheBank]> = self.l2.chunks_mut(self.l2_banks).collect();
        TileSplit {
            l1,
            l2,
            hbm: &mut self.hbm,
            params,
        }
    }

    /// Snapshot of every mutable structure the private-path accesses can
    /// touch (bank contents + HBM), for epoch rollback on replay
    /// mismatch. Claim ports are untouched under PC/PS and run stats are
    /// merged only on commit, so neither needs saving.
    pub(crate) fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            l1: self.l1.clone(),
            l2: self.l2.clone(),
            hbm: self.hbm.clone(),
        }
    }

    /// Restores a snapshot taken by [`MemorySystem::snapshot`].
    pub(crate) fn restore(&mut self, snap: &MemSnapshot) {
        self.l1.clone_from(&snap.l1);
        self.l2.clone_from(&snap.l2);
        self.hbm = snap.hbm.clone();
    }

    /// Mutable access to the HBM stack (epoch replay).
    pub(crate) fn hbm_mut(&mut self) -> &mut Hbm {
        &mut self.hbm
    }

    /// Clones the bank state (L1 + L2) for the steady-state memo. The
    /// HBM is deliberately excluded: [`MemorySystem::begin_run`] resets
    /// it, so pre-run HBM state never influences a run.
    pub(crate) fn cache_state(&self) -> (Vec<CacheBank>, Vec<CacheBank>) {
        (self.l1.clone(), self.l2.clone())
    }

    /// True when the live banks would behave identically to `state`
    /// (see [`CacheBank::same_behavior`]).
    pub(crate) fn cache_state_matches(&self, state: &(Vec<CacheBank>, Vec<CacheBank>)) -> bool {
        self.l1.len() == state.0.len()
            && self.l2.len() == state.1.len()
            && self
                .l1
                .iter()
                .zip(&state.0)
                .all(|(a, b)| a.same_behavior(b))
            && self
                .l2
                .iter()
                .zip(&state.1)
                .all(|(a, b)| a.same_behavior(b))
    }

    /// Runtime reconfiguration to `new_hw`: flushes dirty lines, rebuilds
    /// banks, charges the ≤10-cycle switch plus a bandwidth-bound drain.
    ///
    /// Returns the total cycle cost. A no-op reconfiguration (same
    /// config) costs nothing.
    pub fn reconfigure(&mut self, new_hw: HwConfig) -> u64 {
        if new_hw == self.hw {
            return 0;
        }
        let mut dirty = 0usize;
        for bank in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            dirty += bank.flush();
        }
        // Drain writebacks at full HBM bandwidth across all channels.
        let line_cycles = (self.ua.line_bytes as u64).div_ceil(self.ua.hbm_bytes_per_cycle);
        let drain = (dirty as u64 * line_cycles).div_ceil(self.ua.hbm_channels as u64);
        let cost = self.ua.reconfig_cycles + drain;
        self.stats.reconfigurations += 1;
        self.stats.reconfig_cycles += cost;
        self.stats.flush_writebacks += dirty as u64;
        self.stats.hbm_line_writes += dirty as u64;
        self.hw = new_hw;
        self.build_banks();
        cost
    }

    /// Total L1 cache capacity visible to one tile's PEs, in bytes.
    pub fn l1_cache_bytes_per_tile(&self) -> usize {
        self.ua
            .l1_cache_banks(self.geom.pes_per_tile(), self.hw.l1())
            * self.ua.bank_bytes
    }

    /// SPM bytes shared by one tile's PEs (SCS) or per PE summed (PS).
    pub fn spm_bytes_per_tile(&self) -> usize {
        self.ua
            .spm_bytes_per_tile(self.geom.pes_per_tile(), self.hw.l1())
    }
}

/// Copy of the microarchitectural parameters the private access paths
/// need, detached from `&MemorySystem` so per-tile splits can carry it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrivParams {
    pub(crate) xbar: u64,
    pub(crate) l1_latency: u64,
    pub(crate) l2_latency: u64,
    pub(crate) prefetch: bool,
    /// L1 bank count in the current mode (`l1_div.n`; `B` under PC).
    pub(crate) l1_nbanks: u64,
    /// Divisor for PEs per tile (LCP round-robin over private L2 banks).
    pub(crate) b_div: FastDiv,
}

/// One tile's mutable memory state for the private-hierarchy paths:
/// its L1 banks (empty under PS), its L2 banks, an HBM sink and a stats
/// block. `H` is the real [`Hbm`] in sequential execution and a logging
/// shadow in the epoch-parallel core.
#[derive(Debug)]
pub(crate) struct PrivTile<'a, H> {
    pub(crate) l1: &'a mut [CacheBank],
    pub(crate) l2: &'a mut [CacheBank],
    pub(crate) hbm: &'a mut H,
    pub(crate) stats: &'a mut SimStats,
}

/// Independent per-tile views of the whole memory system (PC/PS only).
#[derive(Debug)]
pub(crate) struct TileSplit<'a> {
    pub(crate) l1: Vec<&'a mut [CacheBank]>,
    pub(crate) l2: Vec<&'a mut [CacheBank]>,
    pub(crate) hbm: &'a mut Hbm,
    pub(crate) params: PrivParams,
}

/// Bank/HBM snapshot for epoch rollback.
#[derive(Debug)]
pub(crate) struct MemSnapshot {
    l1: Vec<CacheBank>,
    l2: Vec<CacheBank>,
    hbm: Hbm,
}

/// Private-L2 bank selection within a tile: `(bank, local_line, nbanks)`.
/// A PE owns bank `pe` outright (full line space, transparent crossbar);
/// the LCP round-robins over the tile's banks.
#[inline]
pub(crate) fn priv_route(p: &PrivParams, pe: Option<usize>, line: u64) -> (usize, u64, u64) {
    match pe {
        Some(pe) => (pe, line, 1),
        None => (p.b_div.rem(line) as usize, p.b_div.div(line), p.b_div.n),
    }
}

/// Direct private-L2 access: PS PEs (no L1 cache level) and LCPs under
/// PC/PS. Mirrors the store-ack convention of
/// [`MemorySystem::shared_direct_access`].
pub(crate) fn priv_direct_access<H: HbmSink>(
    t: &mut PrivTile<'_, H>,
    p: &PrivParams,
    pe: Option<usize>,
    line: u64,
    is_store: bool,
    cycle: u64,
) -> u64 {
    let at = cycle + p.xbar;
    let done = priv_l2_fill(t, p, pe, line, is_store, at);
    if is_store {
        cycle + p.xbar + 1
    } else {
        done
    }
}

/// Fills `line` in the tile's private L2 (no arbitration, no claims —
/// the transparent crossbar has no shared port to conflict on).
pub(crate) fn priv_l2_fill<H: HbmSink>(
    t: &mut PrivTile<'_, H>,
    p: &PrivParams,
    pe: Option<usize>,
    line: u64,
    is_store: bool,
    at: u64,
) -> u64 {
    let (bank, local, nbanks) = priv_route(p, pe, line);
    let lat = p.xbar + p.l2_latency;
    let bank_ref = &mut t.l2[bank];
    let probe = bank_ref.access(local, is_store);
    // Tagged stride prefetcher on the L2 banks as well: sequential
    // access streams (hit or miss) keep pulling the next line from
    // main memory.
    let stride = p.prefetch && bank_ref.stride_detected(local);
    let pf_wanted = stride && !bank_ref.contains(local + 1);
    let completion = match probe {
        ProbeResult::Hit => {
            t.stats.l2_hits += 1;
            at + lat
        }
        ProbeResult::Miss {
            victim_dirty,
            victim_line,
        } => {
            t.stats.l2_misses += 1;
            if victim_dirty {
                let victim_global =
                    victim_line.expect("dirty implies valid") * nbanks + (line % nbanks);
                // Writebacks consume HBM bandwidth off the critical path.
                let _ = t.hbm.write(victim_global, at + lat);
            }
            let done = t.hbm.read(line, at + lat);
            done + p.xbar
        }
    };
    if pf_wanted {
        let pf_local = local + 1;
        let pf_global = pf_local * nbanks + (line % nbanks);
        let _ = t.hbm.prefetch(pf_global, at + lat);
        t.stats.prefetches += 1;
        if let Some(dirty_local) = t.l2[bank].install(pf_local) {
            let _ = t
                .hbm
                .write(dirty_local * nbanks + (line % nbanks), at + lat);
        }
    }
    completion
}

/// Installs an L1 dirty victim into the tile's private L2.
pub(crate) fn priv_l2_writeback<H: HbmSink>(
    t: &mut PrivTile<'_, H>,
    p: &PrivParams,
    pe: Option<usize>,
    line: u64,
    at: u64,
) {
    let (bank, local, nbanks) = priv_route(p, pe, line);
    t.stats.l2_writeback_installs += 1;
    // A full-line writeback needs no fetch: install directly, dirty.
    if let Some(dirty_local) = t.l2[bank].install(local) {
        let _ = t.hbm.write(dirty_local * nbanks + (line % nbanks), at);
    }
    // Mark dirty via a store probe (guaranteed hit after install;
    // only bank-internal counters are touched, not run stats).
    let _ = t.l2[bank].access(local, true);
}

/// Private-L1 access for PE `pe` (PC mode): bank `pe`, full line space
/// locally, single-cycle base latency, no arbitration.
pub(crate) fn priv_l1_access<H: HbmSink>(
    t: &mut PrivTile<'_, H>,
    p: &PrivParams,
    pe: usize,
    line: u64,
    is_store: bool,
    cycle: u64,
) -> u64 {
    let nbanks = p.l1_nbanks;
    let local = line;
    let base_lat = p.l1_latency;
    let bank_ref = &mut t.l1[pe];
    let probe = bank_ref.access(local, is_store);
    let stride = p.prefetch && bank_ref.stride_detected(local);
    let pf_wanted = stride && !bank_ref.contains(local + 1);
    let completion = match probe {
        ProbeResult::Hit => {
            t.stats.l1_hits += 1;
            cycle + base_lat
        }
        ProbeResult::Miss {
            victim_dirty,
            victim_line,
        } => priv_l1_miss(
            t,
            p,
            pe,
            line,
            nbanks,
            victim_dirty,
            victim_line,
            is_store,
            cycle + base_lat,
        ),
    };
    if pf_wanted {
        let pf_local = local + 1;
        let pf_global = pf_local * nbanks + pe as u64;
        // Asynchronous: charge the L2-side traffic, don't extend the
        // demand access.
        let _ = priv_l2_fill(t, p, Some(pe), pf_global, false, cycle + base_lat);
        t.stats.prefetches += 1;
        if let Some(dirty_local) = t.l1[pe].install(pf_local) {
            priv_l2_writeback(
                t,
                p,
                Some(pe),
                dirty_local * nbanks + pe as u64,
                cycle + base_lat,
            );
        }
    }
    completion
}

/// Private-L1 miss slow path, outlined so the hit loop stays compact.
#[cold]
#[allow(clippy::too_many_arguments)]
fn priv_l1_miss<H: HbmSink>(
    t: &mut PrivTile<'_, H>,
    p: &PrivParams,
    pe: usize,
    line: u64,
    nbanks: u64,
    victim_dirty: bool,
    victim_line: Option<u64>,
    is_store: bool,
    at: u64,
) -> u64 {
    t.stats.l1_misses += 1;
    if victim_dirty {
        let victim_global = victim_line.expect("dirty implies valid") * nbanks + pe as u64;
        priv_l2_writeback(t, p, Some(pe), victim_global, at);
    }
    let fill_done = priv_l2_fill(t, p, Some(pe), line, false, at);
    if is_store {
        at + 1
    } else {
        fill_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(hw: HwConfig) -> MemorySystem {
        MemorySystem::new(Geometry::new(2, 4), MicroArch::paper(), hw)
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut m = sys(HwConfig::Sc);
        let miss_done = m.global_access(0, 0x1000, false, 0);
        assert!(
            miss_done > 50,
            "cold miss should reach HBM, got {miss_done}"
        );
        let hit_done = m.global_access(0, 0x1000, false, miss_done + 1);
        assert!(
            hit_done - (miss_done + 1) <= 4,
            "hit latency {} too high",
            hit_done - (miss_done + 1)
        );
        assert_eq!(m.stats.l1_hits, 1);
        assert_eq!(m.stats.l1_misses, 1);
    }

    #[test]
    fn private_hit_faster_than_shared_hit() {
        let mut shared = sys(HwConfig::Sc);
        let mut private = sys(HwConfig::Pc);
        let a = shared.global_access(0, 0x40, false, 0);
        let b = private.global_access(0, 0x40, false, 0);
        let a2 = shared.global_access(0, 0x40, false, a + 1) - (a + 1);
        let b2 = private.global_access(0, 0x40, false, b + 1) - (b + 1);
        assert!(b2 < a2, "private hit {b2} should beat shared hit {a2}");
    }

    #[test]
    fn same_cycle_same_bank_conflicts_serialize() {
        let mut m = sys(HwConfig::Sc);
        // Warm the line so both accesses hit.
        let done = m.global_access(0, 0x0, false, 0);
        let t = done + 1;
        let first = m.global_access(0, 0x0, false, t);
        let second = m.global_access(1, 0x0, false, t);
        assert!(second > first, "second same-bank access must serialize");
        assert!(m.stats.conflict_cycles >= 1);
    }

    #[test]
    fn different_banks_no_conflict() {
        let mut m = sys(HwConfig::Sc);
        let d1 = m.global_access(0, 0x0, false, 0);
        let _ = m.global_access(1, 0x40, false, 0); // next line → next bank
        let t = d1 + 200;
        let a = m.global_access(0, 0x0, false, t);
        let b = m.global_access(1, 0x40, false, t);
        assert_eq!(a - t, b - t, "different banks should have equal latency");
    }

    #[test]
    fn private_caches_do_not_share_contents() {
        let mut m = sys(HwConfig::Pc);
        let _ = m.global_access(0, 0x2000, false, 0);
        // Same line from another PE in the same tile: own cache → miss.
        let _ = m.global_access(1, 0x2000, false, 500);
        assert_eq!(m.stats.l1_misses, 2);
    }

    #[test]
    fn shared_cache_shares_contents() {
        let mut m = sys(HwConfig::Sc);
        let d = m.global_access(0, 0x2000, false, 0);
        let _ = m.global_access(1, 0x2000, false, d + 1);
        assert_eq!(m.stats.l1_misses, 1);
        assert_eq!(m.stats.l1_hits, 1);
    }

    #[test]
    fn stores_ack_early_but_charge_state() {
        let mut m = sys(HwConfig::Sc);
        let done = m.global_access(0, 0x3000, true, 0);
        assert!(done < 20, "store ack {done} should not wait on HBM fill");
        assert_eq!(m.stats.stores, 1);
        assert_eq!(m.stats.l1_misses, 1);
    }

    #[test]
    fn ps_mode_bypasses_l1() {
        let mut m = sys(HwConfig::Ps);
        let _ = m.global_access(0, 0x100, false, 0);
        assert_eq!(m.stats.l1_misses, 0);
        assert_eq!(m.stats.l2_misses, 1);
        let d = m.global_access(0, 0x100, false, 300);
        assert_eq!(m.stats.l2_hits, 1);
        assert!(d - 300 < 10);
    }

    #[test]
    fn spm_access_latencies() {
        let mut scs = sys(HwConfig::Scs);
        let d = scs.spm_access(0, 16, false, 0);
        assert!(d <= 4, "shared spm access {d}");
        let mut ps = sys(HwConfig::Ps);
        let d = ps.spm_access(0, 16, false, 0);
        assert_eq!(d, 1, "private spm is single-cycle");
    }

    #[test]
    #[should_panic(expected = "cache-only")]
    fn spm_in_cache_mode_panics() {
        let mut m = sys(HwConfig::Sc);
        let _ = m.spm_access(0, 0, false, 0);
    }

    #[test]
    fn sequential_stream_benefits_from_prefetch() {
        let mut with = sys(HwConfig::Sc);
        let mut without = {
            let mut ua = MicroArch::paper();
            ua.prefetch = false;
            MemorySystem::new(Geometry::new(2, 4), ua, HwConfig::Sc)
        };
        let mut t_with = 0;
        let mut t_without = 0;
        for i in 0..512u64 {
            t_with = with.global_access(0, i * 4, false, t_with + 1);
            t_without = without.global_access(0, i * 4, false, t_without + 1);
        }
        assert!(
            t_with < t_without,
            "prefetch should speed sequential streams: {t_with} vs {t_without}"
        );
        assert!(with.stats.prefetches > 0);
    }

    #[test]
    fn reconfigure_flushes_and_charges() {
        let mut m = sys(HwConfig::Sc);
        for i in 0..32u64 {
            let _ = m.global_access(0, 0x8000 + i * 64, true, i * 300);
        }
        let cost = m.reconfigure(HwConfig::Ps);
        assert!(cost >= MicroArch::paper().reconfig_cycles);
        assert_eq!(m.config(), HwConfig::Ps);
        assert!(m.stats.flush_writebacks > 0);
        // Same-config reconfiguration is free.
        assert_eq!(m.reconfigure(HwConfig::Ps), 0);
    }

    #[test]
    fn capacity_helpers() {
        let m = sys(HwConfig::Scs);
        assert_eq!(m.l1_cache_bytes_per_tile(), 2 * 4096);
        assert_eq!(m.spm_bytes_per_tile(), 2 * 4096);
        let m = sys(HwConfig::Sc);
        assert_eq!(m.l1_cache_bytes_per_tile(), 4 * 4096);
        assert_eq!(m.spm_bytes_per_tile(), 0);
    }

    #[test]
    fn lcp_access_skips_l1() {
        let mut m = sys(HwConfig::Sc);
        let lcp = Geometry::new(2, 4).lcp_id(0);
        let _ = m.global_access(lcp, 0x500, false, 0);
        assert_eq!(m.stats.l1_misses, 0);
        assert_eq!(m.stats.l2_misses, 1);
    }

    #[test]
    fn capacity_exceeding_working_set_thrashes() {
        // Working set far beyond L1+L2 → the second pass must refetch
        // essentially everything from HBM (demand or prefetch); nothing
        // is retained on chip.
        let mut m = sys(HwConfig::Sc);
        let lines = 4096u64; // 256 kB ≫ 16 kB L1 + 32 kB L2
        let mut t = 0;
        for i in 0..lines {
            t = m.global_access(0, i * 64, false, t + 1);
        }
        m.sync_hbm_stats();
        let reads_first = m.stats.hbm_line_reads;
        for i in 0..lines {
            t = m.global_access(0, i * 64, false, t + 1);
        }
        m.sync_hbm_stats();
        let reads_second = m.stats.hbm_line_reads - reads_first;
        assert!(
            reads_second as f64 > 0.8 * lines as f64,
            "second pass should refetch from HBM: {reads_second}/{lines}"
        );
    }
}
