//! Main-memory model: one HBM2 stack with 16 pseudo-channels, each with
//! a sustained service rate and an 80–150 ns access latency window
//! (paper Table II).

/// Sink for HBM-level traffic: either the real [`Hbm`] stack or a
/// per-tile shadow that logs every call so the epoch-parallel execution
/// core can replay and validate them against the real stack (see
/// DESIGN.md §9). The memory-system fill/writeback paths are generic
/// over this trait so both run against identical code.
pub(crate) trait HbmSink {
    /// Demand line read; returns the completion cycle.
    fn read(&mut self, line: u64, cycle: u64) -> u64;
    /// Line writeback (consumes bandwidth; caller ignores the result).
    fn write(&mut self, line: u64, cycle: u64) -> u64;
    /// Prefetch line read (bandwidth + read count; result ignored).
    fn prefetch(&mut self, line: u64, cycle: u64) -> u64;
}

impl HbmSink for Hbm {
    #[inline]
    fn read(&mut self, line: u64, cycle: u64) -> u64 {
        Hbm::read(self, line, cycle)
    }

    #[inline]
    fn write(&mut self, line: u64, cycle: u64) -> u64 {
        Hbm::write(self, line, cycle)
    }

    #[inline]
    fn prefetch(&mut self, line: u64, cycle: u64) -> u64 {
        Hbm::prefetch(self, line, cycle)
    }
}

/// HBM2 stack model.
///
/// Channels are line-address interleaved. Each channel serialises line
/// transfers at `line_bytes / bytes_per_cycle` cycles per line
/// (bandwidth), while each access additionally experiences a
/// deterministic pseudo-random latency in the configured window
/// (address-hashed, so runs are reproducible).
#[derive(Debug, Clone)]
pub struct Hbm {
    channels: Vec<u64>,
    line_service_cycles: u64,
    latency_min: u64,
    latency_span: u64,
    reads: u64,
    writes: u64,
    queue_cycles: u64,
}

impl Hbm {
    /// Creates a stack with `channels` pseudo-channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`, `bytes_per_cycle == 0`, or the latency
    /// window is inverted.
    pub fn new(
        channels: usize,
        line_bytes: usize,
        bytes_per_cycle: u64,
        latency_min: u64,
        latency_max: u64,
    ) -> Self {
        assert!(channels > 0, "hbm needs at least one channel");
        assert!(bytes_per_cycle > 0, "hbm bandwidth must be positive");
        assert!(latency_max >= latency_min, "latency window inverted");
        Hbm {
            channels: vec![0; channels],
            line_service_cycles: (line_bytes as u64).div_ceil(bytes_per_cycle),
            latency_min,
            latency_span: latency_max - latency_min + 1,
            reads: 0,
            writes: 0,
            queue_cycles: 0,
        }
    }

    fn channel_of(&self, line: u64) -> usize {
        (line as usize) % self.channels.len()
    }

    /// Deterministic per-line latency in `[min, max]` (splitmix64 hash).
    fn latency_of(&self, line: u64) -> u64 {
        let mut z = line.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.latency_min + z % self.latency_span
    }

    /// Issues a demand line read at `cycle`; returns the completion cycle.
    pub fn read(&mut self, line: u64, cycle: u64) -> u64 {
        self.reads += 1;
        self.issue(line, cycle)
    }

    /// Issues a line writeback at `cycle`. Writebacks are off the load
    /// critical path: they consume channel bandwidth (delaying later
    /// accesses) but the caller does not wait on the returned cycle.
    pub fn write(&mut self, line: u64, cycle: u64) -> u64 {
        self.writes += 1;
        self.issue(line, cycle)
    }

    /// Issues a prefetch line read: consumes bandwidth, counted as a read.
    pub fn prefetch(&mut self, line: u64, cycle: u64) -> u64 {
        self.reads += 1;
        self.issue(line, cycle)
    }

    fn issue(&mut self, line: u64, cycle: u64) -> u64 {
        let ch = self.channel_of(line);
        let start = self.channels[ch].max(cycle);
        self.queue_cycles += start - cycle;
        self.channels[ch] = start + self.line_service_cycles;
        start + self.latency_of(line)
    }

    /// Demand + prefetch line reads issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Line writebacks issued so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total cycles requests spent waiting for a busy channel
    /// (bandwidth-bound indicator).
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// Commits a set of per-tile shadow stacks whose channel footprints
    /// are pairwise disjoint: each channel's occupancy becomes the
    /// maximum over the shadows (each channel was driven by at most one
    /// shadow, so the max *is* that owner's exact sequential value —
    /// channel occupancy only ever increases on issue), and the traffic
    /// counters absorb each shadow's delta over the shared `proto`
    /// snapshot all shadows started from.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a shadow's channel count differs from ours.
    pub(crate) fn merge_disjoint(&mut self, proto: &Hbm, shadows: &[Hbm]) {
        for s in shadows {
            debug_assert_eq!(s.channels.len(), self.channels.len());
            for (ch, &occ) in s.channels.iter().enumerate() {
                if occ > self.channels[ch] {
                    self.channels[ch] = occ;
                }
            }
            self.reads += s.reads - proto.reads;
            self.writes += s.writes - proto.writes;
            self.queue_cycles += s.queue_cycles - proto.queue_cycles;
        }
    }

    /// Resets statistics and channel occupancy.
    pub fn reset(&mut self) {
        self.channels.fill(0);
        self.reads = 0;
        self.writes = 0;
        self.queue_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hbm() -> Hbm {
        Hbm::new(16, 64, 8, 80, 150)
    }

    #[test]
    fn latency_within_window() {
        let h = hbm();
        for line in 0..1000 {
            let l = h.latency_of(line);
            assert!((80..=150).contains(&l), "latency {l} out of window");
        }
    }

    #[test]
    fn latency_deterministic() {
        let h = hbm();
        assert_eq!(h.latency_of(1234), h.latency_of(1234));
    }

    #[test]
    fn same_channel_serialises() {
        let mut h = hbm();
        // Lines 0 and 16 map to channel 0 with 16 channels.
        let a = h.read(0, 0);
        let b = h.read(16, 0);
        // Second access starts after the first's 8-cycle service slot.
        assert!(b >= a.min(8 + 80) && b >= 8 + 80, "b = {b}");
        assert!(h.queue_cycles() >= 8);
    }

    #[test]
    fn different_channels_parallel() {
        let mut h = hbm();
        let _ = h.read(0, 0);
        let before = h.queue_cycles();
        let _ = h.read(1, 0);
        assert_eq!(
            h.queue_cycles(),
            before,
            "different channels must not queue"
        );
    }

    #[test]
    fn counts_reads_and_writes() {
        let mut h = hbm();
        h.read(0, 0);
        h.write(1, 0);
        h.prefetch(2, 0);
        assert_eq!(h.reads(), 2);
        assert_eq!(h.writes(), 1);
    }

    #[test]
    fn reset_clears_state() {
        let mut h = hbm();
        h.read(0, 0);
        h.reset();
        assert_eq!(h.reads(), 0);
        assert_eq!(h.queue_cycles(), 0);
        let t = h.read(0, 0);
        assert!(t <= 150);
    }
}
