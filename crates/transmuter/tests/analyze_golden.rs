//! Golden fixtures for the analyzer-derived lints: hand-built op
//! streams on which the dead-op, cross-epoch-hazard and
//! redundant-barrier diagnostics must fire (and must *not* fire),
//! pinning the exact diagnostic text and provenance fields, plus the
//! behaviour of the opt-in [`ProgramBuilder::elide_proven_barriers`].

use transmuter::{
    ExecMode, Geometry, HwConfig, LintKind, Machine, MicroArch, ProgramBuilder, Severity,
};

fn builder(hw: HwConfig) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    b.begin(Geometry::new(2, 4), hw, &MicroArch::paper());
    b
}

/// A store overwritten by the same worker with no intervening read is
/// dead; the diagnostic carries the first store's provenance.
#[test]
fn dead_store_fires_with_pinned_text() {
    let mut b = builder(HwConfig::Pc);
    b.begin_pe(0, 0);
    b.store(0x1000);
    b.store(0x1000);
    b.load(0x1000);
    b.compute(1);
    let prog = b.finish();

    let a = prog.analysis().expect("analysis attached");
    assert!(a.congruent());
    let diags = a.diagnostics();
    assert_eq!(diags.len(), 1, "exactly the dead store: {diags:?}");
    let d = &diags[0];
    assert_eq!(d.worker, 0);
    assert_eq!(d.position, Some(0));
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.kind, LintKind::DeadStore { addr: 0x1000 });
    assert_eq!(
        d.to_string(),
        "warning: worker 0, op 0: store to 0x1000 is dead: overwritten before any read"
    );
}

/// Store → load → store is not dead (the read consumes the first
/// value, and the trailing HBM store is a live program output).
#[test]
fn dead_store_silent_when_value_is_read() {
    let mut b = builder(HwConfig::Pc);
    b.begin_pe(0, 0);
    b.store(0x1000);
    b.load(0x1000);
    b.store(0x1000);
    let prog = b.finish();

    let a = prog.analysis().expect("analysis attached");
    assert!(a.diagnostics().is_empty(), "{:?}", a.diagnostics());
}

/// SPM slots are scratch: a trailing SPM store that is never read back
/// is dead even at end-of-program.
#[test]
fn dead_spm_write_fires_with_pinned_text() {
    let mut b = builder(HwConfig::Ps);
    b.begin_pe(0, 0);
    b.spm_store(8);
    b.compute(2);
    let prog = b.finish();

    let a = prog.analysis().expect("analysis attached");
    let diags = a.diagnostics();
    assert_eq!(diags.len(), 1, "exactly the dead spm write: {diags:?}");
    let d = &diags[0];
    assert_eq!(d.worker, 0);
    assert_eq!(d.position, Some(0));
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.kind, LintKind::DeadSpmWrite { offset: 8 });
    assert_eq!(
        d.to_string(),
        "warning: worker 0, op 0: spm store at offset 8 is dead: never read back"
    );
}

/// An SPM store that is read back before the end of the program is
/// live — no diagnostic.
#[test]
fn dead_spm_write_silent_when_read_back() {
    let mut b = builder(HwConfig::Ps);
    b.begin_pe(0, 0);
    b.spm_store(8);
    b.spm_load(8);
    let prog = b.finish();

    let a = prog.analysis().expect("analysis attached");
    assert!(a.diagnostics().is_empty(), "{:?}", a.diagnostics());
}

/// Two workers storing to one location in consecutive epochs with no
/// intervening read: the hazard is reported on the clobbered store
/// with full `(worker, epoch, pc)` provenance for both sides, and the
/// separating barrier is *not* an elision candidate.
#[test]
fn cross_epoch_write_hazard_fires_with_provenance() {
    let mut b = builder(HwConfig::Pc);
    b.begin_pe(0, 0);
    b.store(0x2000);
    b.global_barrier();
    b.compute(1);
    b.begin_pe(0, 1);
    b.compute(1);
    b.global_barrier();
    b.store(0x2000);
    let prog = b.finish();

    let a = prog.analysis().expect("analysis attached");
    let diags = a.diagnostics();
    assert_eq!(diags.len(), 1, "exactly the hazard: {diags:?}");
    let d = &diags[0];
    assert_eq!(d.worker, 0, "reported on the overwritten store's worker");
    assert_eq!(d.position, Some(0));
    assert_eq!(
        d.kind,
        LintKind::CrossEpochWriteHazard {
            addr: 0x2000,
            first: (0, 0, 0),
            second: (1, 1, 2),
        }
    );
    assert_eq!(
        d.to_string(),
        "warning: worker 0, op 0: cross-epoch write-write hazard on 0x2000: \
         worker 0 (epoch 0, op 0) overwritten by worker 1 (epoch 1, op 2) \
         with no intervening read"
    );
    assert!(
        a.elision_candidates().is_empty(),
        "the barrier orders a real dependence and must stay"
    );
}

/// A global barrier between epochs with no cross-worker dependence is
/// flagged as an elision candidate (positionless, on the first
/// streamed worker), and `elide_proven_barriers` removes exactly it —
/// the rebuilt program has one epoch and still runs.
#[test]
fn redundant_barrier_flagged_and_elided() {
    let mut b = builder(HwConfig::Pc);
    b.begin_pe(0, 0);
    b.load(0x0);
    b.compute(1);
    b.global_barrier();
    b.load(0x1000);
    b.compute(1);
    b.begin_pe(1, 0);
    b.load(0x40);
    b.compute(1);
    b.global_barrier();
    b.load(0x1040);
    b.compute(1);
    b.finish();

    {
        let a = b.program().analysis().expect("analysis attached");
        assert_eq!(a.elision_candidates(), &[0]);
        let barrier_diags: Vec<_> = a
            .diagnostics()
            .iter()
            .filter(|d| matches!(d.kind, LintKind::RedundantBarrier { .. }))
            .collect();
        assert_eq!(barrier_diags.len(), 1, "{barrier_diags:?}");
        let d = barrier_diags[0];
        assert_eq!(d.worker, 0, "attributed to the first streamed worker");
        assert_eq!(d.position, None, "a barrier has no single op position");
        assert_eq!(d.kind, LintKind::RedundantBarrier { barrier_index: 0 });
        assert_eq!(
            d.to_string(),
            "warning: worker 0: global barrier 0 separates provably independent \
             epochs; elision candidate"
        );
    }

    assert_eq!(b.elide_proven_barriers(), 1);
    let prog = b.program();
    let a = prog.analysis().expect("analysis re-derived after elision");
    assert!(a.congruent());
    assert_eq!(a.epochs().len(), 1, "the two epochs merged into one");
    assert!(a.elision_candidates().is_empty());

    let mut m = Machine::new(Geometry::new(2, 4), MicroArch::paper());
    m.reconfigure(HwConfig::Pc);
    m.set_exec_mode(ExecMode::Sequential);
    m.run_program(prog).expect("elided program still runs");
}

/// `elide_proven_barriers` is a no-op when every barrier orders a real
/// cross-epoch dependence.
#[test]
fn elision_refused_on_dependent_epochs() {
    let mut b = builder(HwConfig::Pc);
    b.begin_pe(0, 0);
    b.store(0x2000);
    b.global_barrier();
    b.compute(1);
    b.begin_pe(0, 1);
    b.compute(1);
    b.global_barrier();
    b.store(0x2000);
    b.finish();

    assert_eq!(b.elide_proven_barriers(), 0);
    let a = b.program().analysis().expect("analysis attached");
    assert_eq!(a.epochs().len(), 2, "both epochs survive");
}
