//! Property and unit tests of the verification layer: the linter must
//! accept exactly the stream sets the machine runs to completion, and
//! the race detector must respect barrier-epoch happens-before.

use proptest::prelude::*;
use transmuter::verify::{self, LintKind, ProgramSet, RaceKind, RegionMap, Severity};
use transmuter::{
    Geometry, HwConfig, Machine, MicroArch, Op, SimError, StreamBuilder, TraceConfig, TraceEvent,
};

fn machine_with(geom: Geometry, hw: HwConfig) -> Machine {
    let mut m = Machine::new(geom, MicroArch::paper());
    m.reconfigure(hw);
    m
}

// ---------------------------------------------------------------------
// Seeded-fault unit tests (acceptance criteria).
// ---------------------------------------------------------------------

#[test]
fn linter_catches_tile_barrier_mismatch() {
    let geom = Geometry::new(1, 2);
    let mut p = ProgramSet::new(geom);
    let mut a = StreamBuilder::new();
    a.compute(1).tile_barrier().compute(1);
    let mut b = StreamBuilder::new();
    b.compute(1); // seeded fault: no barrier
    p.set_pe(0, 0, a);
    p.set_pe(0, 1, b);
    let diags = verify::lint(&p, HwConfig::Sc, &MicroArch::paper(), None);
    assert!(!verify::is_clean(&diags));
    assert!(
        diags
            .iter()
            .any(|d| matches!(d.kind, LintKind::BarrierMismatch { tile: 0, .. })),
        "expected a barrier mismatch, got {diags:?}"
    );
    // ... and the machine agrees.
    let err = machine_with(geom, HwConfig::Sc)
        .run_verified(&p, None)
        .unwrap_err();
    assert!(matches!(err, SimError::Rejected { .. }));
}

#[test]
fn linter_catches_spm_offset_past_capacity() {
    let geom = Geometry::new(1, 2);
    let ua = MicroArch::paper();
    let cap = ua.spm_bytes_per_pe(HwConfig::Ps.l1());
    let mut p = ProgramSet::new(geom);
    let mut a = StreamBuilder::new();
    a.spm_store(cap as u32); // seeded fault: one word past the end
    p.set_pe(0, 0, a);
    let diags = verify::lint(&p, HwConfig::Ps, &ua, None);
    assert!(diags.iter().any(|d| matches!(
        d.kind,
        LintKind::SpmOffsetOutOfRange { offset, capacity } if offset as usize == cap && capacity == cap
    )));
    // The last in-bounds word is fine.
    let mut p = ProgramSet::new(geom);
    let mut a = StreamBuilder::new();
    a.spm_store(cap as u32 - 4);
    p.set_pe(0, 0, a);
    assert!(verify::is_clean(&verify::lint(&p, HwConfig::Ps, &ua, None)));
}

#[test]
fn linter_catches_spm_under_cache_only_configs() {
    let geom = Geometry::new(1, 2);
    for hw in [HwConfig::Sc, HwConfig::Pc] {
        let mut p = ProgramSet::new(geom);
        let mut a = StreamBuilder::new();
        a.spm_load(0);
        p.set_pe(0, 0, a);
        let diags = verify::lint(&p, hw, &MicroArch::paper(), None);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, LintKind::SpmUnavailable { config } if config == hw)),
            "{hw}: expected SpmUnavailable, got {diags:?}"
        );
    }
}

#[test]
fn linter_catches_lcp_tile_barrier_and_unmapped_address() {
    let geom = Geometry::new(1, 1);
    let mut p = ProgramSet::new(geom);
    let mut lcp = StreamBuilder::new();
    lcp.tile_barrier();
    p.set_lcp(0, lcp);
    let mut pe = StreamBuilder::new();
    pe.load(0x9999_0000);
    p.set_pe(0, 0, pe);
    let mut map = RegionMap::new();
    map.add("x", 0x1_0000, 0x1000);
    let diags = verify::lint(&p, HwConfig::Sc, &MicroArch::paper(), Some(&map));
    assert!(diags.iter().any(|d| d.kind == LintKind::LcpTileBarrier));
    assert!(diags
        .iter()
        .any(|d| matches!(d.kind, LintKind::UnmappedAddress { addr: 0x9999_0000 })));
    // Mapped accesses are accepted.
    let mut p = ProgramSet::new(geom);
    let mut pe = StreamBuilder::new();
    pe.load(0x1_0000).store(0x1_0ffc);
    p.set_pe(0, 0, pe);
    assert!(verify::is_clean(&verify::lint(
        &p,
        HwConfig::Sc,
        &MicroArch::paper(),
        Some(&map)
    )));
}

#[test]
fn linter_warns_on_zero_cycle_compute() {
    let geom = Geometry::new(1, 1);
    let mut p = ProgramSet::new(geom);
    p.set_pe(0, 0, [Op::Compute(0)]);
    let diags = verify::lint(&p, HwConfig::Sc, &MicroArch::paper(), None);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert_eq!(diags[0].kind, LintKind::ZeroCycleCompute);
    // Warnings do not reject the run.
    assert!(verify::is_clean(&diags));
    assert!(machine_with(geom, HwConfig::Sc)
        .run_verified(&p, None)
        .is_ok());
}

#[test]
fn race_detector_flags_seeded_same_epoch_store_store() {
    // Two PEs in different tiles store the same word with no barrier.
    let geom = Geometry::new(2, 1);
    let mut m = machine_with(geom, HwConfig::Sc);
    m.set_trace(Some(TraceConfig::default()));
    let mut p = ProgramSet::new(geom);
    let mut a = StreamBuilder::new();
    a.store(0x2000);
    let mut b = StreamBuilder::new();
    b.compute(5).store(0x2000);
    p.set_pe(0, 0, a);
    p.set_pe(1, 0, b);
    m.run_verified(&p, None).unwrap();
    let cap = m.take_trace_capture();
    assert!(!cap.truncated);
    let races = verify::detect_races(&cap.events, geom, HwConfig::Sc, &MicroArch::paper());
    assert_eq!(races.len(), 1, "expected exactly one race, got {races:?}");
    assert_eq!(races[0].kind, RaceKind::StoreStore);
    assert_eq!(races[0].epoch, 0);
}

#[test]
fn race_detector_accepts_global_barrier_separation() {
    // Same conflicting stores, but an interposed global barrier orders
    // them: no race.
    let geom = Geometry::new(2, 1);
    let mut m = machine_with(geom, HwConfig::Sc);
    m.set_trace(Some(TraceConfig::default()));
    let mut p = ProgramSet::new(geom);
    let mut a = StreamBuilder::new();
    a.store(0x2000).global_barrier();
    let mut b = StreamBuilder::new();
    b.global_barrier().store(0x2000);
    p.set_pe(0, 0, a);
    p.set_pe(1, 0, b);
    m.run_verified(&p, None).unwrap();
    let races = verify::detect_races(&m.take_trace(), geom, HwConfig::Sc, &MicroArch::paper());
    assert!(
        races.is_empty(),
        "barrier-separated stores must not race: {races:?}"
    );
}

#[test]
fn race_detector_accepts_tile_barrier_separation_within_tile() {
    let geom = Geometry::new(1, 2);
    let mut m = machine_with(geom, HwConfig::Sc);
    m.set_trace(Some(TraceConfig::default()));
    let mut p = ProgramSet::new(geom);
    let mut a = StreamBuilder::new();
    a.store(0x3000).tile_barrier();
    let mut b = StreamBuilder::new();
    b.tile_barrier().store(0x3000);
    p.set_pe(0, 0, a);
    p.set_pe(0, 1, b);
    m.run_verified(&p, None).unwrap();
    let races = verify::detect_races(&m.take_trace(), geom, HwConfig::Sc, &MicroArch::paper());
    assert!(
        races.is_empty(),
        "tile-barrier-separated stores must not race: {races:?}"
    );

    // But a tile barrier does NOT order PEs of different tiles.
    let geom = Geometry::new(2, 2);
    let mut m = machine_with(geom, HwConfig::Sc);
    m.set_trace(Some(TraceConfig::default()));
    let mut p = ProgramSet::new(geom);
    let mut a = StreamBuilder::new();
    a.store(0x3000).tile_barrier();
    let mut a2 = StreamBuilder::new();
    a2.tile_barrier();
    let mut b = StreamBuilder::new();
    b.tile_barrier().store(0x3000);
    let mut b2 = StreamBuilder::new();
    b2.tile_barrier();
    p.set_pe(0, 0, a);
    p.set_pe(0, 1, a2);
    p.set_pe(1, 0, b);
    p.set_pe(1, 1, b2);
    m.run_verified(&p, None).unwrap();
    let races = verify::detect_races(&m.take_trace(), geom, HwConfig::Sc, &MicroArch::paper());
    assert_eq!(
        races.len(),
        1,
        "cross-tile stores stay unordered: {races:?}"
    );
}

#[test]
fn race_detector_reports_load_store_conflicts() {
    let geom = Geometry::new(2, 1);
    let mut m = machine_with(geom, HwConfig::Sc);
    m.set_trace(Some(TraceConfig::default()));
    let mut p = ProgramSet::new(geom);
    let mut a = StreamBuilder::new();
    a.load(0x2000);
    let mut b = StreamBuilder::new();
    b.store(0x2000);
    p.set_pe(0, 0, a);
    p.set_pe(1, 0, b);
    m.run_verified(&p, None).unwrap();
    let races = verify::detect_races(&m.take_trace(), geom, HwConfig::Sc, &MicroArch::paper());
    assert_eq!(races.len(), 1);
    assert_eq!(races[0].kind, RaceKind::LoadStore);
}

#[test]
fn private_spm_never_races() {
    // Both PEs hammer SPM offset 0 — but in PS each has its own bank.
    let geom = Geometry::new(1, 2);
    let mut m = machine_with(geom, HwConfig::Ps);
    m.set_trace(Some(TraceConfig::default()));
    let mut p = ProgramSet::new(geom);
    for pe in 0..2 {
        let mut q = StreamBuilder::new();
        q.spm_store(0).spm_load(0);
        p.set_pe(0, pe, q);
    }
    m.run_verified(&p, None).unwrap();
    let races = verify::detect_races(&m.take_trace(), geom, HwConfig::Ps, &MicroArch::paper());
    assert!(races.is_empty(), "{races:?}");
}

#[test]
fn shared_spm_store_store_races() {
    // In SCS the tile's SPM is shared: same offset from two PEs is a
    // real conflict.
    let geom = Geometry::new(1, 2);
    let mut m = machine_with(geom, HwConfig::Scs);
    m.set_trace(Some(TraceConfig::default()));
    let mut p = ProgramSet::new(geom);
    for pe in 0..2 {
        let mut q = StreamBuilder::new();
        q.spm_store(64);
        p.set_pe(0, pe, q);
    }
    m.run_verified(&p, None).unwrap();
    let races = verify::detect_races(&m.take_trace(), geom, HwConfig::Scs, &MicroArch::paper());
    assert_eq!(races.len(), 1, "{races:?}");
    assert!(matches!(
        races[0].site,
        verify::RaceSite::SharedSpm {
            tile: 0,
            offset: 64
        }
    ));
}

#[test]
fn scs_on_single_pe_tiles_is_rejected_statically() {
    let geom = Geometry::new(2, 1);
    let mut p = ProgramSet::new(geom);
    p.set_pe(0, 0, [Op::Compute(1)]);
    let diags = verify::lint(&p, HwConfig::Scs, &MicroArch::paper(), None);
    assert!(diags.iter().any(|d| matches!(
        d.kind,
        LintKind::UnsupportedConfig {
            config: HwConfig::Scs
        }
    )));
}

#[test]
fn program_set_round_trips_through_stream_set() {
    let geom = Geometry::new(1, 2);
    let mut p = ProgramSet::new(geom);
    p.set_pe(0, 0, [Op::Compute(3), Op::Load(0x40)]);
    let materialized = ProgramSet::materialize(p.stream_set());
    assert_eq!(
        materialized.worker(0),
        Some(&[Op::Compute(3), Op::Load(0x40)][..])
    );
    assert_eq!(materialized.worker(1), None);
    // Running the borrowed and the owned forms gives identical reports.
    let r1 = machine_with(geom, HwConfig::Sc)
        .run(p.stream_set())
        .unwrap();
    let r2 = machine_with(geom, HwConfig::Sc)
        .run(p.into_stream_set())
        .unwrap();
    assert_eq!(r1.cycles, r2.cycles);
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

/// Decodes one generated op. SPM offsets stay word-aligned and inside
/// the smallest capacity any SPM-bearing config offers (4 kB), because
/// the simulator deliberately tolerates wrapped offsets that the linter
/// rejects — the equivalence below is over the simulator's contract.
fn decode_op(kind: usize, addr: u64, off: u32, n: u32) -> Op {
    match kind {
        0 => Op::Compute(n),
        1 => Op::Load(addr * 4),
        2 => Op::Store(addr * 4),
        3 => Op::SpmLoad(off * 4),
        4 => Op::SpmStore(off * 4),
        5 => Op::TileBarrier,
        _ => Op::GlobalBarrier,
    }
}

/// An LCP must not issue SPM ops (the memory system has no LCP SPM
/// port and treats one as a host-side bug, not a `SimError`), so the
/// generator downgrades them to plain loads for LCP workers.
fn lcp_safe(op: Op) -> Op {
    match op {
        Op::SpmLoad(off) | Op::SpmStore(off) => Op::Load(off as u64),
        other => other,
    }
}

/// One encoded worker stream: a presence selector (0 = no stream) plus
/// raw `(kind, addr, spm_offset, cycles)` op tuples for `decode_op`.
type RawStream = (usize, Vec<(usize, u64, u32, u32)>);

fn arb_machine_case() -> impl Strategy<Value = (usize, usize, usize, Vec<RawStream>)> {
    (1usize..3, 2usize..4, 0usize..4).prop_flat_map(|(tiles, pes, hw)| {
        let workers = tiles * pes + tiles;
        (
            Just(tiles),
            Just(pes),
            Just(hw),
            proptest::collection::vec(
                (
                    0usize..4, // 0 = no stream
                    proptest::collection::vec(
                        (0usize..7, 0u64..0x4000, 0u32..1023, 1u32..4),
                        0..10,
                    ),
                ),
                workers,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The linter accepts a stream set iff the machine runs it to
    /// completion (over the domain where the simulator's error reporting
    /// is well-defined; see `decode_op`).
    #[test]
    fn lint_accepts_iff_run_completes(case in arb_machine_case()) {
        let (tiles, pes, hw_idx, raw) = case;
        let geom = Geometry::new(tiles, pes);
        let hw = HwConfig::ALL[hw_idx];
        let ua = MicroArch::paper();

        let mut programs = ProgramSet::new(geom);
        for (w, (selector, ops)) in raw.iter().enumerate() {
            if *selector == 0 {
                continue;
            }
            let (tile, pe) = geom.locate(w);
            let decoded: Vec<Op> =
                ops.iter().map(|&(k, a, o, n)| decode_op(k, a, o, n)).collect();
            match pe {
                Some(pe) => programs.set_pe(tile, pe, decoded),
                None => programs.set_lcp(tile, decoded.into_iter().map(lcp_safe)),
            }
        }

        let diags = verify::lint(&programs, hw, &ua, None);
        let accepted = verify::is_clean(&diags);

        let mut m = machine_with(geom, hw);
        let run = m.run(programs.stream_set());
        prop_assert_eq!(
            accepted,
            run.is_ok(),
            "lint accepted={} but run={:?} (diags: {:?})",
            accepted,
            run.as_ref().map(|r| r.cycles).map_err(|e| e.to_string()),
            &diags
        );

        // And run_verified agrees with both.
        let mut m = machine_with(geom, hw);
        let verified = m.run_verified(&programs, None);
        prop_assert_eq!(accepted, verified.is_ok());
        if !accepted {
            prop_assert!(matches!(verified, Err(SimError::Rejected { .. })));
        }
    }

    /// A single worker can never race with itself.
    #[test]
    fn single_worker_traces_never_race(
        ops in proptest::collection::vec((0usize..7, 0u64..64, 0u32..64, 1u32..4), 0..40),
    ) {
        let geom = Geometry::new(1, 2);
        let trace: Vec<TraceEvent> = ops
            .iter()
            .enumerate()
            .map(|(i, &(k, a, o, n))| TraceEvent {
                cycle: i as u64,
                done: i as u64 + 1,
                worker: 0,
                op: decode_op(k, a, o, n),
            })
            .collect();
        for hw in HwConfig::ALL {
            let races = verify::detect_races(&trace, geom, hw, &MicroArch::paper());
            prop_assert!(races.is_empty(), "{}: {:?}", hw, &races);
        }
    }

    /// Accesses in distinct global-barrier epochs never race, however
    /// many workers touch the same word.
    #[test]
    fn barrier_separated_accesses_never_race(
        word in 0u64..16,
        stores_per_worker in 1usize..4,
        workers in 2u32..6,
    ) {
        // Worker w performs its stores in epoch w: w global barriers
        // first, then the stores.
        let geom = Geometry::new(6, 1);
        let mut trace = Vec::new();
        let mut cycle = 0u64;
        for w in 0..workers {
            for _ in 0..w {
                trace.push(TraceEvent {
                    cycle,
                    done: cycle,
                    worker: w,
                    op: Op::GlobalBarrier,
                });
                cycle += 1;
            }
            for _ in 0..stores_per_worker {
                trace.push(TraceEvent {
                    cycle,
                    done: cycle + 1,
                    worker: w,
                    op: Op::Store(word * 4),
                });
                cycle += 1;
            }
        }
        let races = verify::detect_races(&trace, geom, HwConfig::Sc, &MicroArch::paper());
        prop_assert!(races.is_empty(), "{:?}", &races);

        // Sanity: removing the barriers makes every worker pair race.
        let unsynced: Vec<TraceEvent> = trace
            .iter()
            .filter(|e| e.op != Op::GlobalBarrier)
            .copied()
            .collect();
        let races = verify::detect_races(&unsynced, geom, HwConfig::Sc, &MicroArch::paper());
        prop_assert_eq!(races.len(), 1, "one report per word+epoch: {:?}", &races);
    }
}
