//! Soundness properties of the static epoch-dependence analyzer:
//!
//! 1. the post-hoc [`analyze`] oracle and the [`ProgramBuilder`]'s
//!    incremental path derive the *same* verdict (differential, same
//!    shape as `builder_props`);
//! 2. `ParCommit::Proven` is sound — a program whose epochs are all
//!    proven commits epoch-parallel with **zero rollbacks** and a
//!    report bit-identical to sequential execution.
//!
//! Deterministic companions pin the two non-trivial proven kinds
//! end-to-end: disjoint HBM channel closures on a private-L2 config
//! (threaded shadow-merge commit) and disjoint HBM lines on a shared-L2
//! config (direct commit, the newly eligible case).

use proptest::prelude::*;
use transmuter::{
    analyze, ExecMode, Geometry, HwConfig, Machine, MicroArch, Op, ParCommit, ProgramBuilder,
    ProvenKind,
};

/// Decodes one generated op (same domain as `builder_props`).
fn decode_op(kind: usize, addr: u64, off: u32, n: u32) -> Op {
    match kind {
        0 => Op::Compute(n),
        1 => Op::Load(addr * 4),
        2 => Op::Store(addr * 4),
        3 => Op::SpmLoad(off * 4),
        4 => Op::SpmStore(off * 4),
        5 => Op::TileBarrier,
        _ => Op::GlobalBarrier,
    }
}

/// LCP SPM accesses are statically rejected by both pipelines; keep
/// them out of the domain so execution comparisons run.
fn lcp_safe(op: Op) -> Op {
    match op {
        Op::SpmLoad(off) | Op::SpmStore(off) => Op::Load(off as u64),
        other => other,
    }
}

/// One encoded worker stream: a presence selector (0 = no stream) plus
/// raw `(kind, addr, spm_offset, cycles)` op tuples for `decode_op`.
type RawStream = (usize, Vec<(usize, u64, u32, u32)>);

fn arb_case() -> impl Strategy<Value = (usize, usize, usize, Vec<RawStream>)> {
    (1usize..3, 2usize..4, 0usize..4).prop_flat_map(|(tiles, pes, hw)| {
        let workers = tiles * pes + tiles;
        (
            Just(tiles),
            Just(pes),
            Just(hw),
            proptest::collection::vec(
                (
                    0usize..4, // 0 = no stream
                    proptest::collection::vec(
                        (0usize..7, 0u64..0x4000, 0u32..1023, 0u32..4),
                        0..10,
                    ),
                ),
                workers,
            ),
        )
    })
}

/// Builds the case's program through the single-pass builder.
fn build_case(
    geom: Geometry,
    hw: HwConfig,
    ua: &MicroArch,
    raw: &[RawStream],
    b: &mut ProgramBuilder,
) {
    b.begin(geom, hw, ua);
    for (w, (selector, ops)) in raw.iter().enumerate() {
        if *selector == 0 {
            continue;
        }
        let (tile, pe) = geom.locate(w);
        match pe {
            Some(pe) => b.begin_pe(tile, pe),
            None => b.begin_lcp(tile),
        }
        for &(k, a, o, n) in ops {
            let op = decode_op(k, a, o, n);
            let op = if pe.is_none() { lcp_safe(op) } else { op };
            match op {
                Op::Compute(n) => b.compute(n),
                Op::Load(a) => b.load(a),
                Op::Store(a) => b.store(a),
                Op::SpmLoad(o) => b.spm_load(o),
                Op::SpmStore(o) => b.spm_store(o),
                Op::TileBarrier => b.tile_barrier(),
                Op::GlobalBarrier => b.global_barrier(),
            }
        }
    }
    b.finish();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The post-hoc oracle reproduces the builder's incremental verdict
    /// exactly: epochs, conflict witness, diagnostics, elision set,
    /// dependence edges — the whole [`transmuter::Analysis`].
    #[test]
    fn post_hoc_analysis_matches_incremental(case in arb_case()) {
        let (tiles, pes, hw_idx, raw) = case;
        let geom = Geometry::new(tiles, pes);
        let hw = HwConfig::ALL[hw_idx];
        let ua = MicroArch::paper();
        let mut b = ProgramBuilder::new();
        build_case(geom, hw, &ua, &raw, &mut b);
        let built = b.program();

        let incremental = built.analysis().expect("builder attaches an analysis");
        let post_hoc = analyze(built);
        prop_assert_eq!(incremental, &post_hoc);
    }

    /// Soundness: when the analyzer proves every epoch, an epoch-parallel
    /// run commits with zero rollbacks and a report bit-identical to
    /// sequential execution — on every config, including the shared-L2
    /// ones that are only eligible *because* of the proof.
    #[test]
    fn proven_implies_no_rollback_and_bit_identical(case in arb_case()) {
        let (tiles, pes, hw_idx, raw) = case;
        let geom = Geometry::new(tiles, pes);
        let hw = HwConfig::ALL[hw_idx];
        let ua = MicroArch::paper();
        let mut b = ProgramBuilder::new();
        build_case(geom, hw, &ua, &raw, &mut b);
        let built = b.program();

        let all_proven = built.analysis().is_some_and(|a| a.all_proven());
        if !(all_proven && built.parallel_ok() && tiles > 1) {
            return Ok(());
        }

        let mut seq = Machine::new(geom, MicroArch::paper());
        seq.reconfigure(hw);
        seq.set_exec_mode(ExecMode::Sequential);
        let mut par = Machine::new(geom, MicroArch::paper());
        par.reconfigure(hw);
        par.set_exec_mode(ExecMode::ParallelTiles);

        let rs = seq.run_program(built);
        let rp = par.run_program(built);
        match (rs, rp) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.cycles, b.cycles);
                prop_assert_eq!(a.stats, b.stats);
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(format!("{ea:?}"), format!("{eb:?}")),
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "divergent outcomes: sequential {:?} vs parallel {:?}",
                    a.map(|r| r.cycles),
                    b.map(|r| r.cycles)
                )));
            }
        }
        prop_assert_eq!(par.epoch_stats().rolled_back, 0);
    }
}

/// Strict disjoint-channel case: on `Ps` (private L2, direct PE route)
/// each tile's loads hit lines `16k + 8t`, so tile 0's channel closure
/// is `{0, 1}` and tile 1's is `{8, 9}` — disjoint. Both tiles are
/// HBM-active in both epochs, forcing the `DisjointChannels` proof (not
/// `SingleTile`), and the threaded shadow-merge commit must be exact.
#[test]
fn disjoint_channels_commit_replay_free() {
    let geom = Geometry::new(2, 4);
    let ua = MicroArch::paper();
    let mut b = ProgramBuilder::new();
    b.begin(geom, HwConfig::Ps, &ua);
    for tile in 0..2u64 {
        for pe in 0..4 {
            b.begin_pe(tile as usize, pe);
            for epoch in 0..2u64 {
                for k in 0..3u64 {
                    let line = 16 * (3 * epoch + k) + 8 * tile;
                    b.load(line * 64 + pe as u64 * 8);
                    b.compute(2);
                }
                if epoch == 0 {
                    b.global_barrier();
                }
            }
        }
        b.begin_lcp(tile as usize);
        b.compute(5);
        b.global_barrier();
        b.compute(5);
    }
    let prog = b.finish();

    let analysis = prog.analysis().expect("analysis attached");
    assert!(analysis.congruent());
    assert_eq!(
        analysis.epochs(),
        &[
            ParCommit::Proven(ProvenKind::DisjointChannels),
            ParCommit::Proven(ProvenKind::DisjointChannels),
        ],
        "both epochs must need (and get) the channel-closure proof"
    );

    let mut seq = Machine::new(geom, MicroArch::paper());
    seq.reconfigure(HwConfig::Ps);
    seq.set_exec_mode(ExecMode::Sequential);
    let mut par = Machine::new(geom, MicroArch::paper());
    par.reconfigure(HwConfig::Ps);
    par.set_exec_mode(ExecMode::ParallelTiles);

    let a = seq.run_program(prog).expect("sequential run");
    let b = par.run_program(prog).expect("parallel run");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
    let ep = par.epoch_stats();
    assert_eq!(ep.proven, 2, "both epochs commit replay-free");
    assert_eq!(ep.replayed, 0);
    assert_eq!(ep.rolled_back, 0);
}

/// Newly eligible shared-L2 case: on `Sc`, tile `t` touches only lines
/// `2k + t`, so every epoch's line sets are tile-disjoint and the
/// program becomes epoch-parallel eligible *only* through the
/// `DisjointLines` proof (shared-L2 configs were excluded before).
#[test]
fn shared_l2_disjoint_lines_commit_replay_free() {
    let geom = Geometry::new(2, 4);
    let ua = MicroArch::paper();
    let mut b = ProgramBuilder::new();
    b.begin(geom, HwConfig::Sc, &ua);
    for tile in 0..2u64 {
        for pe in 0..4u64 {
            b.begin_pe(tile as usize, pe as usize);
            for epoch in 0..2u64 {
                for k in 0..3u64 {
                    let line = 2 * (12 * epoch + 3 * pe + k) + tile;
                    b.load(line * 64);
                    b.compute(1);
                }
                if epoch == 0 {
                    b.global_barrier();
                }
            }
        }
        b.begin_lcp(tile as usize);
        b.compute(3);
        b.global_barrier();
        b.compute(3);
    }
    let prog = b.finish();

    let analysis = prog.analysis().expect("analysis attached");
    assert_eq!(
        analysis.epochs(),
        &[
            ParCommit::Proven(ProvenKind::DisjointLines),
            ParCommit::Proven(ProvenKind::DisjointLines),
        ],
        "both epochs must need (and get) the line-disjointness proof"
    );
    assert!(analysis.all_proven());

    let mut seq = Machine::new(geom, MicroArch::paper());
    seq.set_exec_mode(ExecMode::Sequential);
    let mut par = Machine::new(geom, MicroArch::paper());
    par.set_exec_mode(ExecMode::ParallelTiles);

    let a = seq.run_program(prog).expect("sequential run");
    let b = par.run_program(prog).expect("parallel run");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
    let ep = par.epoch_stats();
    assert_eq!(ep.proven, 2, "shared-L2 epochs commit replay-free");
    assert_eq!(ep.replayed, 0);
    assert_eq!(ep.rolled_back, 0);
}
