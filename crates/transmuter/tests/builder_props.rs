//! Differential properties of the single-pass [`ProgramBuilder`]: a
//! program emitted through the builder must be indistinguishable —
//! micro-op count, parallel-epoch eligibility, lint verdict, and
//! simulated execution — from one compiled out of materialized op
//! streams and linted after the fact (the legacy two-pass pipeline the
//! builder replaced).

use proptest::prelude::*;
use transmuter::verify::{self, ProgramSet};
use transmuter::{Geometry, HwConfig, Machine, MicroArch, Op, Program, ProgramBuilder};

/// Decodes one generated op. SPM offsets stay word-aligned and inside
/// the smallest capacity any SPM-bearing config offers, mirroring the
/// linter-equivalence generator in `verify_props.rs`.
fn decode_op(kind: usize, addr: u64, off: u32, n: u32) -> Op {
    match kind {
        0 => Op::Compute(n),
        1 => Op::Load(addr * 4),
        2 => Op::Store(addr * 4),
        3 => Op::SpmLoad(off * 4),
        4 => Op::SpmStore(off * 4),
        5 => Op::TileBarrier,
        _ => Op::GlobalBarrier,
    }
}

/// LCP SPM accesses are a host-side bug the memory system does not
/// model; both pipelines under test reject them statically, but keeping
/// them out of the domain lets the execution comparison run.
fn lcp_safe(op: Op) -> Op {
    match op {
        Op::SpmLoad(off) | Op::SpmStore(off) => Op::Load(off as u64),
        other => other,
    }
}

/// One encoded worker stream: a presence selector (0 = no stream) plus
/// raw `(kind, addr, spm_offset, cycles)` op tuples for `decode_op`.
type RawStream = (usize, Vec<(usize, u64, u32, u32)>);

fn arb_case() -> impl Strategy<Value = (usize, usize, usize, Vec<RawStream>)> {
    (1usize..3, 2usize..4, 0usize..4).prop_flat_map(|(tiles, pes, hw)| {
        let workers = tiles * pes + tiles;
        (
            Just(tiles),
            Just(pes),
            Just(hw),
            proptest::collection::vec(
                (
                    0usize..4, // 0 = no stream
                    proptest::collection::vec(
                        // Cycle counts include 0 to exercise the
                        // zero-cycle-compute warning on both paths.
                        (0usize..7, 0u64..0x4000, 0u32..1023, 0u32..4),
                        0..10,
                    ),
                ),
                workers,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder-emitted programs are bit-identical to legacy
    /// compile-then-lint programs: same length, same parallel verdict,
    /// same diagnostics, and the machine cannot tell them apart.
    #[test]
    fn builder_program_matches_legacy_compile(case in arb_case()) {
        let (tiles, pes, hw_idx, raw) = case;
        let geom = Geometry::new(tiles, pes);
        let hw = HwConfig::ALL[hw_idx];
        let ua = MicroArch::paper();

        // Decode into (worker, ops) streams, LCP-sanitized.
        let mut streams: Vec<(usize, Vec<Op>)> = Vec::new();
        for (w, (selector, ops)) in raw.iter().enumerate() {
            if *selector == 0 {
                continue;
            }
            let (_, pe) = geom.locate(w);
            let decoded: Vec<Op> = ops
                .iter()
                .map(|&(k, a, o, n)| {
                    let op = decode_op(k, a, o, n);
                    if pe.is_none() {
                        lcp_safe(op)
                    } else {
                        op
                    }
                })
                .collect();
            streams.push((w, decoded));
        }

        // Legacy two-pass pipeline: materialize op streams, compile a
        // Program from them, lint the stream set separately, attach.
        let mut legacy = Program::compile(
            geom,
            hw,
            &ua,
            streams.iter().map(|(w, v)| (*w, v.as_slice())),
        );
        let mut pset = ProgramSet::new(geom);
        for (w, ops) in &streams {
            let (tile, pe) = geom.locate(*w);
            match pe {
                Some(pe) => pset.set_pe(tile, pe, ops.iter().copied()),
                None => pset.set_lcp(tile, ops.iter().copied()),
            }
        }
        legacy.attach_lint(verify::lint(&pset, hw, &ua, None));

        // Single-pass builder pipeline over the same emission order.
        let mut b = ProgramBuilder::new();
        b.begin(geom, hw, &ua);
        for (w, ops) in &streams {
            let (tile, pe) = geom.locate(*w);
            match pe {
                Some(pe) => b.begin_pe(tile, pe),
                None => b.begin_lcp(tile),
            }
            for op in ops {
                match *op {
                    Op::Compute(n) => b.compute(n),
                    Op::Load(a) => b.load(a),
                    Op::Store(a) => b.store(a),
                    Op::SpmLoad(o) => b.spm_load(o),
                    Op::SpmStore(o) => b.spm_store(o),
                    Op::TileBarrier => b.tile_barrier(),
                    Op::GlobalBarrier => b.global_barrier(),
                }
            }
        }
        let built = b.finish();

        prop_assert_eq!(built.len(), legacy.len());
        prop_assert_eq!(built.parallel_ok(), legacy.parallel_ok());
        prop_assert_eq!(built.lint_clean(), legacy.lint_clean());
        prop_assert_eq!(built.lint_diagnostics(), legacy.lint_diagnostics());

        // The machine cannot tell them apart either: identical reports
        // on success, identical rejections on lint errors.
        let mut ma = Machine::new(geom, MicroArch::paper());
        ma.reconfigure(hw);
        let mut mb = Machine::new(geom, MicroArch::paper());
        mb.reconfigure(hw);
        let ra = ma.run_program(&legacy);
        let rb = mb.run_program(built);
        match (ra, rb) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.cycles, b.cycles);
                prop_assert_eq!(a.stats, b.stats);
            }
            (Err(ea), Err(eb)) => {
                prop_assert_eq!(format!("{ea:?}"), format!("{eb:?}"));
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "divergent outcomes: legacy {:?} vs builder {:?}",
                    a.map(|r| r.cycles),
                    b.map(|r| r.cycles)
                )));
            }
        }
    }
}
