//! Property-based tests over the core invariants: format conversions,
//! partitioning, SpMV dataflow equivalence and simulator determinism.

use cosparse::{CoSparse, Frontier, HwConfig, Policy, SwConfig};
use proptest::prelude::*;
use sparse::partition::{RowPartition, VBlocks};
use sparse::{CooMatrix, CscMatrix, CsrMatrix, Idx, SparseVector};
use transmuter::{Geometry, Machine, MicroArch};

/// Strategy: a small random matrix as (rows, cols, triplets).
fn matrix_strategy() -> impl Strategy<Value = CooMatrix> {
    (2usize..40, 2usize..40).prop_flat_map(|(rows, cols)| {
        let triplet = (0..rows as Idx, 0..cols as Idx, -10.0f32..10.0);
        proptest::collection::vec(triplet, 0..200).prop_map(move |ts| {
            CooMatrix::from_triplets(rows, cols, ts).expect("in-bounds by construction")
        })
    })
}

fn vector_strategy(max_dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, max_dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO → CSR → COO and COO → CSC → COO are lossless.
    #[test]
    fn format_roundtrips(m in matrix_strategy()) {
        let csr = CsrMatrix::from(&m);
        prop_assert_eq!(&CooMatrix::from(&csr), &m);
        let csc = CscMatrix::from(&m);
        prop_assert_eq!(&CooMatrix::from(&csc), &m);
    }

    /// All three formats compute the same dense SpMV.
    #[test]
    fn spmv_agrees_across_formats(m in matrix_strategy(), xs in vector_strategy(40)) {
        let x: sparse::DenseVector<f32> = xs[..m.cols()].to_vec().into();
        let want = m.spmv_dense(&x).unwrap();
        let via_csr = CsrMatrix::from(&m).spmv_dense(&x).unwrap();
        let via_csc = CscMatrix::from(&m).spmv_dense(&x).unwrap();
        for i in 0..m.rows() {
            prop_assert!((via_csr[i] - want[i]).abs() < 1e-3);
            prop_assert!((via_csc[i] - want[i]).abs() < 1e-3);
        }
    }

    /// Sparse-vector SpMV equals dense SpMV restricted to the support.
    #[test]
    fn sparse_spmv_equals_dense(m in matrix_strategy(), xs in vector_strategy(40)) {
        let entries: Vec<(Idx, f32)> = xs[..m.cols()]
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0 && v.abs() > 1.0) // sparsify
            .map(|(i, v)| (i as Idx, *v))
            .collect();
        let sv = SparseVector::from_entries(m.cols(), entries).unwrap();
        let csc = CscMatrix::from(&m);
        let dense_result = csc.spmv_dense(&sv.to_dense(0.0)).unwrap();
        let sparse_result = csc.spmv_sparse(&sv).unwrap().to_dense(0.0);
        for i in 0..m.rows() {
            prop_assert!((dense_result[i] - sparse_result[i]).abs() < 1e-3);
        }
    }

    /// nnz-balanced partitions tile the rows exactly and account every
    /// nonzero.
    #[test]
    fn partitions_tile_rows(
        counts in proptest::collection::vec(0usize..50, 1..100),
        parts in 1usize..20,
    ) {
        let p = RowPartition::nnz_balanced(&counts, parts);
        prop_assert_eq!(p.len(), parts);
        let mut covered = Vec::new();
        let mut total = 0usize;
        for i in 0..p.len() {
            covered.extend(p.range(i));
            total += p.part_nnz(i);
        }
        prop_assert_eq!(covered, (0..counts.len()).collect::<Vec<_>>());
        prop_assert_eq!(total, counts.iter().sum::<usize>());
    }

    /// vblocks tile the columns exactly.
    #[test]
    fn vblocks_tile_columns(cols in 1usize..500, width in 1usize..64) {
        let vb = VBlocks::new(cols, width);
        let mut covered = Vec::new();
        for b in vb.iter() {
            covered.extend(b);
        }
        prop_assert_eq!(covered, (0..cols).collect::<Vec<_>>());
    }

    /// Dense↔sparse frontier conversion round trips.
    #[test]
    fn frontier_conversion_roundtrip(xs in vector_strategy(64)) {
        let d: sparse::DenseVector<f32> = xs.into();
        let s = d.to_sparse(|v| *v != 0.0);
        prop_assert_eq!(s.to_dense(0.0), d);
    }

    /// Both dataflows, simulated end to end, agree with the reference
    /// on arbitrary matrices and frontiers.
    #[test]
    fn dataflows_agree_on_random_inputs(m in matrix_strategy(), xs in vector_strategy(40)) {
        let x: sparse::DenseVector<f32> = xs[..m.cols()].to_vec().into();
        let want = m.spmv_dense(&x).unwrap();
        let sv = x.to_sparse(|v| *v != 0.0);

        let mut ip = CoSparse::new(&m, Machine::new(Geometry::new(1, 2), MicroArch::paper()));
        ip.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let got_ip = match ip.spmv(&Frontier::Dense(x.clone())).unwrap().result {
            Frontier::Dense(v) => v,
            Frontier::Sparse(v) => v.to_dense(0.0),
        };
        let mut op = CoSparse::new(&m, Machine::new(Geometry::new(1, 2), MicroArch::paper()));
        op.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
        let got_op = match op.spmv(&Frontier::Sparse(sv)).unwrap().result {
            Frontier::Dense(v) => v,
            Frontier::Sparse(v) => v.to_dense(0.0),
        };
        for i in 0..m.rows() {
            prop_assert!((got_ip[i] - want[i]).abs() < 1e-3);
            prop_assert!((got_op[i] - want[i]).abs() < 1e-3);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator is deterministic: identical inputs → identical
    /// cycle counts and stats, for every hardware configuration.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..1000, density in 0.001f64..0.3) {
        let m = sparse::generate::uniform(512, 512, 4000, seed).unwrap();
        let sv = sparse::generate::random_sparse_vector(512, density, seed).unwrap();
        for (sw, hw) in [
            (SwConfig::InnerProduct, HwConfig::Scs),
            (SwConfig::OuterProduct, HwConfig::Ps),
        ] {
            let frontier = match sw {
                SwConfig::OuterProduct => Frontier::Sparse(sv.clone()),
                SwConfig::InnerProduct => Frontier::Dense(sv.to_dense(0.0)),
            };
            let run = |
            | {
                let mut rt =
                    CoSparse::new(&m, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
                rt.set_policy(Policy::Fixed(sw, hw));
                rt.spmv(&frontier).unwrap().report
            };
            let (a, b) = (run(), run());
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.stats, b.stats);
        }
    }

    /// Denser frontiers never make the outer product cheaper
    /// (monotonicity of the sparse dataflow's work).
    #[test]
    fn op_cost_monotone_in_density(seed in 0u64..100) {
        let m = sparse::generate::uniform(2048, 2048, 30_000, seed).unwrap();
        let mut last = 0u64;
        for density in [0.002, 0.02, 0.2] {
            let sv = sparse::generate::random_sparse_vector(2048, density, 7).unwrap();
            let mut rt =
                CoSparse::new(&m, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
            rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
            let cycles = rt.spmv(&Frontier::Sparse(sv)).unwrap().report.cycles;
            prop_assert!(cycles >= last, "OP got cheaper as density rose: {cycles} < {last}");
            last = cycles;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Simulator stats are internally consistent: every global access is
    /// accounted at some level, and hit/miss counts partition accesses.
    #[test]
    fn stats_are_consistent(seed in 0u64..200) {
        let m = sparse::generate::uniform(1024, 1024, 8000, seed).unwrap();
        let sv = sparse::generate::random_sparse_vector(1024, 0.05, seed).unwrap();
        let mut rt = CoSparse::new(&m, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let r = rt.spmv(&Frontier::Dense(sv.to_dense(0.0))).unwrap().report;
        let s = &r.stats;
        // Every cached access either hit or missed L1 (SC routes all
        // PE traffic through L1).
        prop_assert_eq!(s.l1_hits + s.l1_misses, s.loads + s.stores);
        // L2 demand accesses stem from L1 misses (fills) only.
        prop_assert!(s.l2_hits + s.l2_misses >= s.l1_misses);
        // HBM reads cover at least the L2 demand misses.
        prop_assert!(s.hbm_line_reads >= s.l2_misses);
        // Total ops at least one per access plus computes.
        prop_assert!(s.ops >= s.loads + s.stores);
        prop_assert!(r.cycles > 0);
        prop_assert!(r.seconds > 0.0);
        prop_assert!(r.joules() > 0.0);
    }

    /// The functional result is identical across all hardware configs
    /// of the same dataflow (hardware must never change the math).
    #[test]
    fn hardware_config_never_changes_results(seed in 0u64..100) {
        let m = sparse::generate::uniform(512, 512, 5000, seed).unwrap();
        let sv = sparse::generate::random_sparse_vector(512, 0.03, seed).unwrap();
        let mut results = Vec::new();
        for hw in [HwConfig::Sc, HwConfig::Pc, HwConfig::Ps] {
            let mut rt =
                CoSparse::new(&m, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
            rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, hw));
            let out = rt.spmv(&Frontier::Sparse(sv.clone())).unwrap();
            match out.result {
                Frontier::Sparse(v) => results.push(v),
                Frontier::Dense(_) => prop_assert!(false, "OP must produce sparse output"),
            }
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[1], &results[2]);
    }

    /// Generators are shape-safe: suite analogues always produce
    /// in-bounds square matrices with within-budget nonzeros.
    #[test]
    fn suite_specs_generate_in_bounds(divisor in 16usize..64, seed in 0u64..20) {
        use sparse::generate::SuiteGraph;
        let spec = SuiteGraph::Twitter.spec().scaled(divisor);
        let m = spec.generate(seed).unwrap();
        prop_assert_eq!(m.rows(), spec.vertices);
        prop_assert_eq!(m.cols(), spec.vertices);
        prop_assert!(m.nnz() <= spec.edges);
        prop_assert!(m.nnz() as f64 >= 0.9 * spec.edges as f64);
    }
}
