//! Cross-crate integration tests: the full pipeline from matrix
//! generation through the CoSPARSE runtime and graph engine to the
//! baselines, checked against host references.

use baselines::ligra::Ligra;
use baselines::xeon::XeonModel;
use cosparse::{CoSparse, Frontier, HwConfig, Policy, SwConfig};
use graph::{bfs::Bfs, cf::Cf, pagerank::PageRank, sssp::Sssp, Engine};
use sparse::{CooMatrix, CsrMatrix, DenseVector};
use transmuter::{Geometry, Machine, MicroArch};

fn machine(t: usize, p: usize) -> Machine {
    Machine::new(Geometry::new(t, p), MicroArch::paper())
}

/// Every software/hardware combination must produce the same functional
/// SpMV result (timing differs, math must not).
#[test]
fn all_configurations_agree_functionally() {
    let n = 2048;
    let matrix = sparse::generate::uniform(n, n, 30_000, 5).unwrap();
    let x = sparse::generate::random_sparse_vector(n, 0.02, 9).unwrap();
    let want = matrix.spmv_dense(&x.to_dense(0.0)).unwrap();

    let combos = [
        (SwConfig::InnerProduct, HwConfig::Sc),
        (SwConfig::InnerProduct, HwConfig::Scs),
        (SwConfig::OuterProduct, HwConfig::Sc),
        (SwConfig::OuterProduct, HwConfig::Pc),
        (SwConfig::OuterProduct, HwConfig::Ps),
    ];
    for (sw, hw) in combos {
        let mut rt = CoSparse::new(&matrix, machine(2, 4));
        rt.set_policy(Policy::Fixed(sw, hw));
        let frontier = match sw {
            SwConfig::OuterProduct => Frontier::Sparse(x.clone()),
            SwConfig::InnerProduct => Frontier::Dense(x.to_dense(0.0)),
        };
        let out = rt.spmv(&frontier).unwrap();
        let got: DenseVector<f32> = match out.result {
            Frontier::Dense(v) => v,
            Frontier::Sparse(v) => v.to_dense(0.0),
        };
        for i in 0..n {
            assert!(
                (got[i] - want[i]).abs() < 1e-3 * want[i].abs().max(1.0),
                "{sw}/{hw} row {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }
}

/// The auto policy must never be catastrophically worse than the best
/// fixed configuration (it may pay small conversion/reconfig costs).
#[test]
fn auto_policy_tracks_the_best_configuration() {
    // Densities chosen on the unambiguous sides of the crossover; in
    // the ambiguous middle the paper-calibrated thresholds can misfire
    // at reduced scale (see EXPERIMENTS.md, Fig 4 discussion).
    let n = 1 << 13;
    let matrix = sparse::generate::uniform(n, n, 120_000, 6).unwrap();
    for density in [0.002, 0.7] {
        let x = sparse::generate::random_sparse_vector(n, density, 4).unwrap();

        let mut auto = CoSparse::new(&matrix, machine(2, 8));
        let out = auto.spmv(&Frontier::Sparse(x.clone())).unwrap();

        let mut best = u64::MAX;
        for (sw, hw) in [
            (SwConfig::InnerProduct, HwConfig::Sc),
            (SwConfig::InnerProduct, HwConfig::Scs),
            (SwConfig::OuterProduct, HwConfig::Pc),
            (SwConfig::OuterProduct, HwConfig::Ps),
        ] {
            let mut rt = CoSparse::new(&matrix, machine(2, 8));
            rt.set_policy(Policy::Fixed(sw, hw));
            let frontier = match sw {
                SwConfig::OuterProduct => Frontier::Sparse(x.clone()),
                SwConfig::InnerProduct => Frontier::Dense(x.to_dense(0.0)),
            };
            best = best.min(rt.spmv(&frontier).unwrap().report.cycles);
        }
        assert!(
            out.report.cycles <= best.saturating_mul(3),
            "density {density}: auto {} vs best fixed {best}",
            out.report.cycles
        );
    }
}

/// BFS, SSSP, PR and CF all match their references on one shared graph,
/// through the full simulate-and-evaluate path.
#[test]
fn all_four_algorithms_match_references() {
    let adjacency = sparse::generate::rmat(10, 8_000, Default::default(), 33).unwrap();
    let csr = CsrMatrix::from(&adjacency);
    let root = 0u32;

    let mut engine = Engine::new(&adjacency, machine(2, 4));
    let bfs = engine.run(&Bfs::new(root)).unwrap();
    let (want_parents, _) = graph::bfs::reference(&csr, root);
    assert_eq!(bfs.state, want_parents, "bfs parents");

    let mut engine = Engine::new(&adjacency, machine(2, 4));
    let sssp = engine.run(&Sssp::new(root)).unwrap();
    let want_dist = graph::sssp::reference(&csr, root);
    for (v, (&a, &b)) in sssp.state.iter().zip(&want_dist).enumerate() {
        assert_eq!(a.is_infinite(), b.is_infinite(), "sssp vertex {v}");
        if a.is_finite() {
            assert!((a - b).abs() < 1e-4, "sssp vertex {v}: {a} vs {b}");
        }
    }

    let mut engine = Engine::new(&adjacency, machine(2, 4));
    let pr = engine.run(&PageRank::new(0.15, 6)).unwrap();
    let want_pr = graph::pagerank::reference(&csr, 0.15, 6);
    for (v, (&a, &b)) in pr.state.iter().zip(&want_pr).enumerate() {
        assert!((a - b).abs() < 1e-5, "pr vertex {v}");
    }

    let mut engine = Engine::new(&adjacency, machine(2, 4));
    let cf = engine.run(&Cf::new(0.01, 0.02, 3)).unwrap();
    let want_cf = graph::cf::reference(&adjacency, 0.01, 0.02, 3);
    for (v, (got, want)) in cf.state.iter().zip(&want_cf).enumerate() {
        for (k, (&a, &b)) in got.iter().zip(want).enumerate() {
            assert!((a - b).abs() < 1e-4, "cf vertex {v} feature {k}");
        }
    }
}

/// CoSPARSE and Ligra compute the same BFS levels and SSSP distances on
/// a suite-analogue graph.
#[test]
fn cosparse_and_ligra_agree() {
    let adjacency = sparse::generate::rmat(11, 20_000, Default::default(), 9).unwrap();
    let csr = CsrMatrix::from(&adjacency);
    let root = 3u32;

    let ligra = Ligra::new(&adjacency, XeonModel::e7_4860());
    let ligra_bfs = ligra.bfs(root);
    let (_, want_levels) = graph::bfs::reference(&csr, root);
    assert_eq!(ligra_bfs.state, want_levels);

    let mut engine = Engine::new(&adjacency, machine(2, 4));
    let ours = engine.run(&Bfs::new(root)).unwrap();
    // Same reachability set.
    for v in 0..csr.rows() {
        assert_eq!(
            ours.state[v] == graph::bfs::UNVISITED,
            ligra_bfs.state[v] == u32::MAX,
            "vertex {v} reachability"
        );
    }

    let ligra_sssp = ligra.sssp(root);
    let mut engine = Engine::new(&adjacency, machine(2, 4));
    let ours = engine.run(&Sssp::new(root)).unwrap();
    for v in 0..csr.rows() {
        let (a, b) = (ours.state[v], ligra_sssp.state[v]);
        assert_eq!(a.is_infinite(), b.is_infinite(), "sssp vertex {v}");
        if a.is_finite() {
            assert!((a - b).abs() < 1e-4, "sssp vertex {v}: {a} vs {b}");
        }
    }
}

/// An iterative run exercises real runtime reconfiguration: SSSP on a
/// social graph must switch dataflow at least twice (sparse → dense →
/// sparse; SSSP's relaxation tail keeps the frontier sparse long
/// enough to switch back) and the costs must appear in the reports.
#[test]
fn sssp_reconfigures_and_charges_for_it() {
    let adjacency = sparse::generate::rmat(13, 100_000, Default::default(), 5).unwrap();
    let mut engine = Engine::new(&adjacency, machine(2, 8));
    let run = engine.run(&Sssp::new(0)).unwrap();

    let mut switches = 0;
    for w in run.iterations.windows(2) {
        if w[0].software != w[1].software {
            switches += 1;
        }
    }
    assert!(
        switches >= 2,
        "expected sparse→dense→sparse, saw {switches} switches"
    );
    let total_reconfigs: u64 = run
        .iterations
        .iter()
        .map(|i| i.report.stats.reconfigurations)
        .sum();
    assert!(total_reconfigs >= 2, "reconfiguration not charged");
    let conversions: u64 = run
        .iterations
        .iter()
        .map(|i| i.report.stats.loads + i.report.stats.stores)
        .sum();
    assert!(conversions > 0);
}

/// Suite analogues generate and run end to end (smallest two graphs).
#[test]
fn suite_graphs_run_bfs() {
    use sparse::generate::SuiteGraph;
    for g in [SuiteGraph::Vsp, SuiteGraph::Twitter] {
        let spec = g.spec().scaled(8);
        let adjacency = spec.generate(2).unwrap();
        let mut engine = Engine::new(&adjacency, machine(4, 4));
        let run = engine.run(&Bfs::new(0)).unwrap();
        let reached = run
            .state
            .iter()
            .filter(|p| **p != graph::bfs::UNVISITED)
            .count();
        assert!(
            reached > adjacency.rows() / 10,
            "{}: only reached {reached}",
            g.name()
        );
    }
}

/// The energy model orders configurations sensibly: an OP pass over a
/// tiny frontier must cost far less energy than a full IP pass.
#[test]
fn energy_scales_with_work() {
    let n = 1 << 13;
    let matrix = sparse::generate::uniform(n, n, 100_000, 8).unwrap();
    let sparse_x = sparse::generate::random_sparse_vector(n, 0.001, 2).unwrap();

    let mut rt = CoSparse::new(&matrix, machine(2, 4));
    rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
    let op = rt.spmv(&Frontier::Sparse(sparse_x.clone())).unwrap();

    let mut rt = CoSparse::new(&matrix, machine(2, 4));
    rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
    let ip = rt.spmv(&Frontier::Dense(sparse_x.to_dense(0.0))).unwrap();

    assert!(
        op.report.joules() * 5.0 < ip.report.joules(),
        "OP {} J should be ≪ IP {} J at 0.1% density",
        op.report.joules(),
        ip.report.joules()
    );
}

/// Matrix Market round trip feeds the runtime.
#[test]
fn matrix_market_to_spmv() {
    let matrix = sparse::generate::uniform(512, 512, 4000, 12).unwrap();
    let mut buf = Vec::new();
    sparse::io::write_matrix_market(&matrix, &mut buf).unwrap();
    let back = sparse::io::read_matrix_market(buf.as_slice()).unwrap();

    let x = sparse::generate::random_dense_vector(512, 3);
    let mut rt = CoSparse::new(&back, machine(1, 4));
    let out = rt.spmv(&Frontier::Dense(x.clone())).unwrap();
    let want = matrix.spmv_dense(&x).unwrap();
    match out.result {
        Frontier::Dense(y) => {
            for i in 0..512 {
                assert!((y[i] - want[i]).abs() < 1e-3 * want[i].abs().max(1.0));
            }
        }
        other => panic!("expected dense, got {other:?}"),
    }
}

/// CF on a bipartite-style rating graph reduces training error through
/// the full engine.
#[test]
fn cf_learns_on_ratings() {
    let base = sparse::generate::uniform(200, 200, 2000, 13).unwrap();
    let mut triplets = Vec::new();
    for (u, v, w) in base.iter() {
        triplets.push((u, v, w));
        if u != v {
            triplets.push((v, u, w));
        }
    }
    let ratings = CooMatrix::from_triplets(200, 200, triplets).unwrap();
    let alg = Cf::new(0.01, 0.05, 8);
    let before = graph::cf::training_error(
        &ratings,
        &(0..200)
            .map(|v| graph::cf::initial_features(v as u32))
            .collect::<Vec<_>>(),
    );
    let mut engine = Engine::new(&ratings, machine(2, 4));
    let run = engine.run(&alg).unwrap();
    let after = graph::cf::training_error(&ratings, &run.state);
    assert!(after < before * 0.9, "training error {before} → {after}");
}

/// The adaptive policy (extension) stays correct, collects
/// observations, and does not blow up total cost versus the decision
/// tree despite its exploration probes.
#[test]
fn adaptive_policy_learns_without_losing() {
    use cosparse::Policy;
    let adjacency = sparse::generate::rmat(12, 80_000, Default::default(), 14).unwrap();
    let csr = CsrMatrix::from(&adjacency);
    let want = graph::sssp::reference(&csr, 0);

    let mut auto_engine = Engine::new(&adjacency, machine(2, 8));
    let auto = auto_engine.run(&Sssp::new(0)).unwrap();

    let mut adaptive_engine = Engine::new(&adjacency, machine(2, 8));
    adaptive_engine.runtime_mut().set_policy(Policy::Adaptive);
    let adaptive = adaptive_engine.run(&Sssp::new(0)).unwrap();

    // Correctness is policy-independent.
    for (v, (&a, &b)) in adaptive.state.iter().zip(&want).enumerate() {
        assert_eq!(a.is_infinite(), b.is_infinite(), "vertex {v}");
        if a.is_finite() {
            assert!((a - b).abs() < 1e-4, "vertex {v}");
        }
    }
    assert!(adaptive_engine.runtime().adaptive_observations() > 0);
    // Exploration is bounded: within 2x of the tree policy overall.
    assert!(
        adaptive.total_cycles() < auto.total_cycles() * 2,
        "adaptive {} vs auto {}",
        adaptive.total_cycles(),
        auto.total_cycles()
    );
}
