//! `cosparse-cli` — run CoSPARSE graph analytics from the command line.
//!
//! ```text
//! cosparse-cli <algorithm> [options]
//!
//! algorithms:
//!   spmv | bfs | sssp | pr | cf | cc | kbfs | bc
//!
//! options:
//!   --graph <path.mtx>     Matrix Market input (default: synthetic R-MAT)
//!   --edges <path.txt>     SNAP-style edge list input
//!   --suite <name>         Table III analogue: livejournal|pokec|youtube|twitter|vsp
//!   --rmat <scale> <nnz>   synthetic R-MAT graph (default: 12 40000)
//!   --geometry <AxB>       tiles x PEs-per-tile (default: 4x8)
//!   --source <v>           BFS/SSSP root (default: highest-degree vertex)
//!   --density <d>          SpMV frontier density (default: 0.01)
//!   --iterations <n>       PR/CF rounds (default: 10 / 5)
//!   --policy <auto|ip-sc|ip-scs|op-sc|op-pc|op-ps>
//!   --seed <n>             generator seed (default: 42)
//! ```

use cosparse::{CoSparse, Frontier, HwConfig, Policy, SwConfig};
use graph::{bc, bfs::Bfs, cc, cf::Cf, kbfs::KBfs, pagerank::PageRank, sssp::Sssp, Engine};
use sparse::generate::SuiteGraph;
use sparse::{CooMatrix, Idx};
use std::process::ExitCode;
use transmuter::{Geometry, Machine, MicroArch};

#[derive(Debug)]
struct Args {
    algorithm: String,
    graph: Option<String>,
    edges: Option<String>,
    suite: Option<String>,
    rmat: (u32, usize),
    geometry: Geometry,
    source: Option<Idx>,
    density: f64,
    iterations: Option<usize>,
    policy: Policy,
    seed: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cosparse-cli <spmv|bfs|sssp|pr|cf|cc|kbfs|bc> [--graph x.mtx] [--suite name]\n\
         \u{20}      [--rmat scale nnz] [--geometry AxB] [--source v] [--density d]\n\
         \u{20}      [--iterations n] [--policy auto|ip-sc|ip-scs|op-sc|op-pc|op-ps] [--seed n]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let algorithm = argv.next().ok_or("missing algorithm")?;
    let mut args = Args {
        algorithm,
        graph: None,
        edges: None,
        suite: None,
        rmat: (12, 40_000),
        geometry: Geometry::new(4, 8),
        source: None,
        density: 0.01,
        iterations: None,
        policy: Policy::Auto,
        seed: 42,
    };
    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--graph" => args.graph = Some(next(&mut argv, "--graph")?),
            "--edges" => args.edges = Some(next(&mut argv, "--edges")?),
            "--suite" => args.suite = Some(next(&mut argv, "--suite")?),
            "--rmat" => {
                let s = next(&mut argv, "--rmat")?
                    .parse()
                    .map_err(|_| "bad rmat scale")?;
                let n = next(&mut argv, "--rmat")?
                    .parse()
                    .map_err(|_| "bad rmat nnz")?;
                args.rmat = (s, n);
            }
            "--geometry" => {
                let v = next(&mut argv, "--geometry")?;
                let (a, b) = v.split_once('x').ok_or("geometry must be AxB")?;
                args.geometry = Geometry::new(
                    a.parse().map_err(|_| "bad tile count")?,
                    b.parse().map_err(|_| "bad PE count")?,
                );
            }
            "--source" => {
                args.source = Some(
                    next(&mut argv, "--source")?
                        .parse()
                        .map_err(|_| "bad source")?,
                )
            }
            "--density" => {
                args.density = next(&mut argv, "--density")?
                    .parse()
                    .map_err(|_| "bad density")?
            }
            "--iterations" => {
                args.iterations = Some(
                    next(&mut argv, "--iterations")?
                        .parse()
                        .map_err(|_| "bad iterations")?,
                )
            }
            "--policy" => {
                args.policy = match next(&mut argv, "--policy")?.as_str() {
                    "auto" => Policy::Auto,
                    "ip-sc" => Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc),
                    "ip-scs" => Policy::Fixed(SwConfig::InnerProduct, HwConfig::Scs),
                    "op-sc" => Policy::Fixed(SwConfig::OuterProduct, HwConfig::Sc),
                    "op-pc" => Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc),
                    "op-ps" => Policy::Fixed(SwConfig::OuterProduct, HwConfig::Ps),
                    other => return Err(format!("unknown policy {other}")),
                }
            }
            "--seed" => args.seed = next(&mut argv, "--seed")?.parse().map_err(|_| "bad seed")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load_graph(args: &Args) -> Result<CooMatrix, String> {
    if let Some(path) = &args.graph {
        return sparse::io::read_matrix_market_file(path).map_err(|e| e.to_string());
    }
    if let Some(path) = &args.edges {
        return sparse::io::read_edge_list_file(path, 0).map_err(|e| e.to_string());
    }
    if let Some(name) = &args.suite {
        let g = SuiteGraph::ALL
            .iter()
            .find(|g| g.name() == name)
            .ok_or(format!("unknown suite graph {name}"))?;
        return g.adjacency(args.seed).map_err(|e| e.to_string());
    }
    sparse::generate::rmat(args.rmat.0, args.rmat.1, Default::default(), args.seed)
        .map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let adjacency = match load_graph(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error loading graph: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "graph: {} vertices, {} edges (density {:.2e}); machine {} ({} PEs)",
        adjacency.rows(),
        adjacency.nnz(),
        adjacency.density(),
        args.geometry,
        args.geometry.total_pes()
    );
    let machine = Machine::new(args.geometry, MicroArch::paper());
    let source = args.source.unwrap_or_else(|| {
        adjacency
            .row_counts()
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(v, _)| v as Idx)
            .unwrap_or(0)
    });

    if args.algorithm == "spmv" {
        let mut rt = CoSparse::new(&adjacency, machine);
        rt.set_policy(args.policy);
        let sv =
            match sparse::generate::random_sparse_vector(adjacency.cols(), args.density, args.seed)
            {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
        let out = match rt.spmv(&Frontier::Sparse(sv)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("simulation error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "spmv d={}: {}/{} — {} cycles ({:.3e} s), {:.3e} J, {:.1} W avg",
            args.density,
            out.software,
            out.hardware,
            out.report.cycles,
            out.report.seconds,
            out.report.joules(),
            out.report.watts()
        );
        return ExitCode::SUCCESS;
    }

    if args.algorithm == "bc" {
        match bc::betweenness(&adjacency, source, args.geometry) {
            Ok(r) => {
                println!(
                    "bc from {source}: {} levels (fwd+bwd), {} cycles, {:.3e} J",
                    r.levels.len(),
                    r.total_cycles(),
                    r.total_joules()
                );
                let mut top: Vec<(usize, f32)> = r.centrality.iter().copied().enumerate().collect();
                top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                for (v, c) in top.iter().take(5) {
                    println!("  vertex {v:>8}: {c:.2}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("simulation error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut engine = Engine::new(&adjacency, machine);
    engine.runtime_mut().set_policy(args.policy);
    let result = match args.algorithm.as_str() {
        "bfs" => engine.run(&Bfs::new(source)).map(summarize),
        "sssp" => engine.run(&Sssp::new(source)).map(summarize),
        "pr" => engine
            .run(&PageRank::new(0.15, args.iterations.unwrap_or(10)))
            .map(summarize),
        "cf" => engine
            .run(&Cf::new(0.01, 0.05, args.iterations.unwrap_or(5)))
            .map(summarize),
        "cc" => engine.run(&cc::ConnectedComponents::new()).map(summarize),
        "kbfs" => engine
            .run(&KBfs::with_spread_sources(16, adjacency.rows()))
            .map(summarize),
        other => {
            eprintln!("unknown algorithm {other}");
            return usage();
        }
    };
    match result {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simulation error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn summarize<V>(run: graph::RunResult<V>) -> Vec<String> {
    let mut out = vec![format!(
        "{} iterations, {} cycles total ({:.3e} s), {:.3e} J",
        run.iterations.len(),
        run.total_cycles(),
        run.total_seconds(),
        run.total_joules()
    )];
    out.push("iter  density  config   cycles".to_string());
    for it in &run.iterations {
        out.push(format!(
            "{:>4}  {:>6.2}%  {:<7}  {:>10}",
            it.iteration,
            it.frontier_density * 100.0,
            format!("{}/{}", it.software, it.hardware),
            it.report.cycles
        ));
    }
    out
}
