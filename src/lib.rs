//! Facade crate for the CoSPARSE (DAC 2021) reproduction.
//!
//! Re-exports the workspace crates under one roof so examples, tests and
//! downstream users can depend on a single crate:
//!
//! * [`sparse`] — matrix/vector formats, generators, partitioning, IO;
//! * [`transmuter`] — the reconfigurable-manycore simulator substrate;
//! * [`cosparse`] — the reconfigurable SpMV runtime (the paper's
//!   contribution);
//! * [`graph`] — BFS, SSSP, PageRank and CF on the SpMV abstraction;
//! * [`baselines`] — Ligra-style, CPU (MKL-like) and GPU
//!   (cuSPARSE-like) comparison models.
//!
//! # Quickstart
//!
//! ```
//! use cosparse_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small random graph and a sparse frontier.
//! let matrix = sparse::generate::uniform(1 << 12, 1 << 12, 40_000, 42)?;
//! let frontier = sparse::generate::random_sparse_vector(1 << 12, 0.01, 7)?;
//!
//! // Run one reconfigured SpMV on a simulated 2x4 system.
//! let machine = Geometry::new(2, 4).machine();
//! let mut runtime = CoSparse::new(&matrix, machine);
//! let outcome = runtime.spmv(&Frontier::Sparse(frontier))?;
//! println!(
//!     "chose {:?}/{:?}: {} cycles",
//!     outcome.software, outcome.hardware, outcome.report.cycles
//! );
//! # Ok(())
//! # }
//! ```

pub use baselines;
pub use cosparse;
pub use graph;
pub use sparse;
pub use transmuter;

/// Convenient glob-import surface for examples and quick experiments.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::cosparse::{CoSparse, Frontier, HwConfig, SwConfig};
    pub use crate::graph;
    pub use crate::sparse;
    pub use crate::transmuter::Geometry;
}
